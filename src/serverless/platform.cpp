#include "serverless/platform.hpp"

#include <algorithm>
#include <utility>

namespace amoeba::serverless {

void PlatformConfig::validate() const {
  AMOEBA_EXPECTS(cores > 0.0);
  AMOEBA_EXPECTS(pool_memory_mb > 0.0);
  AMOEBA_EXPECTS(disk_bps > 0.0);
  AMOEBA_EXPECTS(net_bps > 0.0);
  AMOEBA_EXPECTS(container_core_cap > 0.0);
  AMOEBA_EXPECTS(cpu_interference >= 0.0);
  AMOEBA_EXPECTS(io_efficiency > 0.0 && io_efficiency <= 1.0);
  AMOEBA_EXPECTS(net_efficiency > 0.0 && net_efficiency <= 1.0);
  AMOEBA_EXPECTS(cold_start_mean_s >= 0.0);
  AMOEBA_EXPECTS(cold_start_cv >= 0.0);
  AMOEBA_EXPECTS(keep_alive_s > 0.0);
  AMOEBA_EXPECTS(crash_after_completion_p >= 0.0 &&
                 crash_after_completion_p <= 1.0);
}

ServerlessPlatform::ServerlessPlatform(sim::Engine& engine, PlatformConfig cfg,
                                       sim::Rng rng)
    : engine_(engine),
      cfg_(cfg),
      rng_(rng),
      cpu_(engine, "node_cpu", cfg.cores, cfg.cpu_interference),
      disk_(engine, "node_disk", cfg.disk_bps),
      net_(engine, "node_net", cfg.net_bps),
      pool_(engine, cfg.pool_memory_mb, cfg.keep_alive_s) {
  cfg_.validate();
}

void ServerlessPlatform::register_function(
    const workload::FunctionProfile& profile, int max_containers) {
  profile.validate();
  AMOEBA_EXPECTS(max_containers >= 0);
  AMOEBA_EXPECTS_MSG(!functions_.contains(profile.name),
                     "function already registered");
  FunctionState st;
  st.profile = profile;
  st.max_containers = max_containers;
  functions_.emplace(profile.name, std::move(st));
}

bool ServerlessPlatform::has_function(const std::string& name) const {
  return functions_.contains(name);
}

const workload::FunctionProfile& ServerlessPlatform::profile(
    const std::string& name) const {
  return state_of(name).profile;
}

std::vector<std::string> ServerlessPlatform::function_names() const {
  std::vector<std::string> out;
  out.reserve(functions_.size());
  for (const auto& [name, st] : functions_) out.push_back(name);
  return out;
}

void ServerlessPlatform::trace_container(const std::string& function,
                                         ContainerId cid, bool begin) {
  if (obs_ == nullptr || !obs_->trace_on()) return;
  amoeba::obs::Tracer& tr = obs_->tracer();
  const auto track = tr.track("svc:" + function + "/pool");
  if (begin) {
    tr.async_begin(track, "container_boot", cid, engine_.now(), "pool");
  } else {
    tr.async_end(track, "container_boot", cid, engine_.now(), "pool");
  }
}

ServerlessPlatform::FunctionState& ServerlessPlatform::state_of(
    const std::string& function) {
  auto it = functions_.find(function);
  AMOEBA_EXPECTS_MSG(it != functions_.end(), "unknown function: " + function);
  return it->second;
}

const ServerlessPlatform::FunctionState& ServerlessPlatform::state_of(
    const std::string& function) const {
  auto it = functions_.find(function);
  AMOEBA_EXPECTS_MSG(it != functions_.end(), "unknown function: " + function);
  return it->second;
}

void ServerlessPlatform::submit(const std::string& function,
                                QueryCompletionFn on_done) {
  AMOEBA_EXPECTS(on_done != nullptr);
  FunctionState& st = state_of(function);
  st.stats.submitted += 1;
  st.queue.push_back(Pending{next_query_id_++, engine_.now(), std::move(on_done)});
  pump(function);
}

double ServerlessPlatform::sample_cold_start() {
  if (cfg_.cold_start_mean_s <= 0.0) return 0.0;
  return rng_.lognormal_mean_cv(cfg_.cold_start_mean_s, cfg_.cold_start_cv);
}

bool ServerlessPlatform::try_make_room(FunctionState& st) {
  if (st.max_containers > 0 &&
      pool_.counts(st.profile.name).total() >= st.max_containers) {
    return false;
  }
  if (pool_.memory_available(st.profile.memory_mb)) return true;
  // Reclaim idle capacity parked by other functions.
  while (pool_.evict_lru_idle(st.profile.name)) {
    if (pool_.memory_available(st.profile.memory_mb)) return true;
  }
  return false;
}

int ServerlessPlatform::prewarm(const std::string& function, int count) {
  AMOEBA_EXPECTS(count >= 0);
  FunctionState& st = state_of(function);
  int started = 0;
  while (pool_.counts(function).total() < count) {
    if (!try_make_room(st)) break;
    const auto cid = pool_.start(
        function, st.profile.memory_mb, sample_cold_start(),
        [this, function](ContainerId id) { on_container_ready(function, id); },
        [this, function](ContainerId id) { on_container_failed(function, id); });
    if (!cid.has_value()) break;
    trace_container(function, *cid, /*begin=*/true);
    ++started;
  }
  // Anything still missing was denied admission (pool memory or n_max):
  // count each denied container so cluster runs can report how often the
  // shared-pool arbitration actually bit.
  const int missing = count - pool_.counts(function).total();
  if (missing > 0) {
    st.stats.prewarm_denied += static_cast<std::uint64_t>(missing);
  }
  return started;
}

void ServerlessPlatform::pump(const std::string& function) {
  FunctionState& st = state_of(function);
  while (!st.queue.empty()) {
    if (auto cid = pool_.acquire_idle(function)) {
      Pending p = std::move(st.queue.front());
      st.queue.pop_front();
      run_invocation(st, *cid, std::move(p));
      continue;
    }
    // No warm container: cold-start one and BIND the head-of-line query to
    // it (OpenWhisk semantics — the activation waits out the boot it
    // caused). Remaining queries stay queued for whichever container frees
    // or boots next.
    if (!try_make_room(st)) break;
    const auto cid = pool_.start(
        function, st.profile.memory_mb, sample_cold_start(),
        [this, function](ContainerId id) { on_container_ready(function, id); },
        [this, function](ContainerId id) { on_container_failed(function, id); });
    if (!cid.has_value()) break;
    trace_container(function, *cid, /*begin=*/true);
    st.bound.emplace(*cid, std::move(st.queue.front()));
    st.queue.pop_front();
  }
}

void ServerlessPlatform::on_container_ready(const std::string& function,
                                            ContainerId cid) {
  trace_container(function, cid, /*begin=*/false);
  FunctionState& st = state_of(function);
  auto it = st.bound.find(cid);
  if (it != st.bound.end()) {
    Pending p = std::move(it->second);
    st.bound.erase(it);
    pool_.mark_busy(cid);
    run_invocation(st, cid, std::move(p));
    return;
  }
  pump(function);
}

void ServerlessPlatform::on_container_failed(const std::string& function,
                                             ContainerId cid) {
  trace_container(function, cid, /*begin=*/false);
  FunctionState& st = state_of(function);
  st.stats.boot_failures += 1;
  if (obs_ != nullptr && obs_->metrics_on()) {
    obs_->metrics()
        .counter("container_boot_failures", {{"function", function}})
        .inc();
  }
  // A query bound to the failed container (OpenWhisk semantics) is rescued
  // to the head of the queue so it keeps its FIFO position; the re-pump
  // below cold-starts a fresh container for it.
  auto it = st.bound.find(cid);
  if (it != st.bound.end()) {
    st.queue.push_front(std::move(it->second));
    st.bound.erase(it);
  }
  pump(function);
}

void ServerlessPlatform::run_invocation(FunctionState& st, ContainerId cid,
                                        Pending pending) {
  const workload::FunctionProfile& p = st.profile;
  auto rec = std::make_shared<QueryRecord>();
  rec->id = pending.id;
  rec->function = p.name;
  rec->arrival = pending.arrival;

  // Attribute the wait between arrival and service start: any overlap with
  // the serving container's boot window counts as cold start (Fig. 4 /
  // Fig. 16 bookkeeping), the rest is queueing.
  const Container& cont = pool_.get(cid);
  const double wait = engine_.now() - pending.arrival;
  if (cont.invocations_served == 1) {  // first use (mark_busy already counted)
    const double boot_overlap =
        std::clamp(cont.ready_at - std::max(pending.arrival, cont.created_at),
                   0.0, wait);
    // "Cold" means the query actually waited on the boot; a query served by
    // a prewarmed container that was ready before it arrived is warm.
    rec->cold = boot_overlap > 0.0;
    if (rec->cold) st.stats.cold_hits += 1;
    rec->breakdown.cold_start_s = boot_overlap;
    rec->breakdown.queue_s = wait - boot_overlap;
  } else {
    rec->breakdown.queue_s = wait;
  }

  const double cpu_work =
      p.exec.cpu_seconds > 0.0
          ? rng_.lognormal_mean_cv(p.exec.cpu_seconds, p.cpu_cv)
          : 0.0;
  rec->cpu_work_done = cpu_work;
  // Containerized IO/network move more effective "device work" per byte
  // (overlay-fs / virtualization tax).
  const double io_scale = 1.0 / cfg_.io_efficiency;
  const double net_scale = 1.0 / cfg_.net_efficiency;

  const std::string fn = p.name;
  auto finish = [this, fn, cid, rec, done = std::move(pending.on_done)]() mutable {
    rec->completion = engine_.now();
    finish_invocation(state_of(fn), cid, *rec, std::move(done));
  };

  // Build the phase chain back-to-front; each phase stamps its duration.
  auto post_phase = [this, rec, bytes = p.result_bytes * net_scale,
                     next = std::move(finish)]() mutable {
    if (bytes <= 0.0) {
      next();
      return;
    }
    const double t0 = engine_.now();
    net_.open(
        bytes, 0.0,
        [this, rec, t0, next = std::move(next)]() mutable {
          rec->breakdown.post_s = engine_.now() - t0;
          next();
        },
        rec->function);
  };

  auto exec_net_phase = [this, rec, bytes = p.exec.net_bytes * net_scale,
                         next = std::move(post_phase)]() mutable {
    if (bytes <= 0.0) {
      next();
      return;
    }
    const double t0 = engine_.now();
    net_.open(
        bytes, 0.0,
        [this, rec, t0, next = std::move(next)]() mutable {
          rec->breakdown.exec_s += engine_.now() - t0;
          next();
        },
        rec->function);
  };

  auto exec_io_phase = [this, rec, bytes = p.exec.io_bytes * io_scale,
                        next = std::move(exec_net_phase)]() mutable {
    if (bytes <= 0.0) {
      next();
      return;
    }
    const double t0 = engine_.now();
    disk_.open(
        bytes, 0.0,
        [this, rec, t0, next = std::move(next)]() mutable {
          rec->breakdown.exec_s += engine_.now() - t0;
          next();
        },
        rec->function);
  };

  auto exec_cpu_phase = [this, rec, cpu_work, cap = cfg_.container_core_cap,
                         next = std::move(exec_io_phase)]() mutable {
    if (cpu_work <= 0.0) {
      next();
      return;
    }
    const double t0 = engine_.now();
    cpu_.open(
        cpu_work, cap,
        [this, rec, t0, next = std::move(next)]() mutable {
          rec->breakdown.exec_s += engine_.now() - t0;
          next();
        },
        rec->function);
  };

  auto code_load_phase = [this, rec, bytes = p.code_bytes * io_scale,
                          next = std::move(exec_cpu_phase)]() mutable {
    if (bytes <= 0.0) {
      next();
      return;
    }
    const double t0 = engine_.now();
    disk_.open(
        bytes, 0.0,
        [this, rec, t0, next = std::move(next)]() mutable {
          rec->breakdown.code_load_s = engine_.now() - t0;
          next();
        },
        rec->function);
  };

  // Entry: fixed platform processing overhead (auth + scheduling).
  rec->breakdown.overhead_s = p.platform_overhead_s;
  if (p.platform_overhead_s > 0.0) {
    engine_.schedule_in(p.platform_overhead_s, std::move(code_load_phase));
  } else {
    code_load_phase();
  }
}

void ServerlessPlatform::finish_invocation(FunctionState& st, ContainerId cid,
                                           QueryRecord record,
                                           QueryCompletionFn on_done) {
  st.stats.completed += 1;
  st.stats.cpu_core_seconds += record.cpu_work_done;

  const bool crash = cfg_.crash_after_completion_p > 0.0 &&
                     rng_.uniform() < cfg_.crash_after_completion_p;
  if (crash || (st.retired && st.queue.empty())) {
    pool_.destroy(cid);
  } else {
    pool_.release_to_idle(cid);
  }
  const std::string fn = record.function;
  on_done(record);
  pump(fn);
}

void ServerlessPlatform::retire(const std::string& function) {
  FunctionState& st = state_of(function);
  st.retired = true;
  pool_.destroy_idle(function);
}

void ServerlessPlatform::unretire(const std::string& function) {
  state_of(function).retired = false;
}

bool ServerlessPlatform::retired(const std::string& function) const {
  return state_of(function).retired;
}

int ServerlessPlatform::release_prewarmed(const std::string& function) {
  FunctionState& st = state_of(function);
  int destroyed = pool_.destroy_idle(function);
  for (ContainerId cid : pool_.starting_ids(function)) {
    if (st.bound.contains(cid)) continue;  // still owed to its bound query
    // The boot's async trace span would otherwise dangle: its completion
    // event self-cancels on destroy, so end the span here.
    trace_container(function, cid, /*begin=*/false);
    pool_.destroy(cid);
    ++destroyed;
  }
  return destroyed;
}

std::size_t ServerlessPlatform::queue_length(
    const std::string& function) const {
  return state_of(function).queue.size();
}

const FunctionStats& ServerlessPlatform::stats(
    const std::string& function) const {
  return state_of(function).stats;
}

double ServerlessPlatform::cpu_core_seconds(
    const std::string& function) const {
  return state_of(function).stats.cpu_core_seconds;
}

double ServerlessPlatform::memory_mb_seconds(const std::string& function,
                                             sim::Time now) {
  return pool_.memory_mb_seconds(function, now);
}

std::array<double, 3> ServerlessPlatform::true_pressure_of(
    const std::string& function) const {
  return {cpu_.pressure_of(function), disk_.pressure_of(function),
          net_.pressure_of(function)};
}

std::array<double, 3> ServerlessPlatform::true_external_pressure(
    const std::string& function) const {
  return {cpu_.external_pressure(function), disk_.external_pressure(function),
          net_.external_pressure(function)};
}

}  // namespace amoeba::serverless
