// Intentionally empty: invocation.hpp is all declarations. Kept so the
// build lists every header's translation unit explicitly.
#include "serverless/invocation.hpp"
