#include "serverless/container_pool.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/profiler.hpp"

namespace amoeba::serverless {

namespace {

/// Per-function container counts are decremented on every state change;
/// a negative count means double-release bookkeeping corruption.
void check_counts(const PoolCounts& c) {
  AMOEBA_INVARIANT_VALS(c.starting >= 0 && c.idle >= 0 && c.busy >= 0,
                        c.starting, c.idle, c.busy);
}

}  // namespace

ContainerPool::ContainerPool(sim::Engine& engine, double memory_capacity_mb,
                             double keep_alive_s)
    : engine_(engine),
      memory_(engine, "pool_memory", memory_capacity_mb),
      keep_alive_s_(keep_alive_s) {
  AMOEBA_EXPECTS(keep_alive_s > 0.0);
}

std::optional<ContainerId> ContainerPool::start(
    const std::string& function, double memory_mb, double boot_s,
    std::function<void(ContainerId)> on_ready,
    std::function<void(ContainerId)> on_failed) {
  AMOEBA_PROF_SCOPE(kServerlessPool);
  AMOEBA_EXPECTS(memory_mb > 0.0);
  AMOEBA_EXPECTS(boot_s >= 0.0);
  AMOEBA_EXPECTS(on_ready != nullptr);
  if (!memory_.try_acquire(memory_mb)) return std::nullopt;

  bool boot_fails = false;
  if (faults_ != nullptr) {
    const sim::FaultInjector::BootFault fault = faults_->next_container_boot();
    boot_fails = fault.fail;
    boot_s *= fault.delay_multiplier;
  }

  const ContainerId id = next_id_++;
  Container c;
  c.id = id;
  c.function = function;
  c.state = ContainerState::kStarting;
  c.memory_mb = memory_mb;
  c.created_at = engine_.now();
  containers_.emplace(id, std::move(c));
  counts_by_fn_[function].starting += 1;
  auto [it, inserted] = mem_gauge_by_fn_.try_emplace(
      function, stats::IntegratedGauge(engine_.now()));
  it->second.add(engine_.now(), memory_mb);
  ++cold_starts_;
  peak_total_containers_ =
      std::max(peak_total_containers_, static_cast<int>(containers_.size()));
  peak_memory_in_use_mb_ = std::max(peak_memory_in_use_mb_, memory_.in_use());

  engine_.schedule_in(boot_s, [this, id, boot_fails, cb = std::move(on_ready),
                               fb = std::move(on_failed)] {
    auto cit = containers_.find(id);
    if (cit == containers_.end()) return;  // destroyed while starting
    Container& cont = cit->second;
    AMOEBA_ASSERT(cont.state == ContainerState::kStarting);
    if (boot_fails) {
      // A failed boot held its memory for the full window; release it now.
      ++boot_failures_;
      destroy(id);
      if (fb) fb(id);
      return;
    }
    cont.state = ContainerState::kIdle;
    cont.ready_at = engine_.now();
    cont.idle_since = engine_.now();
    counts_by_fn_[cont.function].starting -= 1;
    counts_by_fn_[cont.function].idle += 1;
    check_counts(counts_by_fn_[cont.function]);
    idle_by_fn_[cont.function].push_back(id);
    cont.expiry_event =
        engine_.schedule_in(keep_alive_s_, [this, id] { expire(id); });
    cb(id);
  });
  return id;
}

bool ContainerPool::memory_available(double memory_mb) const {
  return memory_.available() + 1e-9 >= memory_mb;
}

bool ContainerPool::evict_lru_idle(const std::string& exclude_function) {
  AMOEBA_PROF_SCOPE(kServerlessPool);
  ContainerId victim = 0;
  double oldest = std::numeric_limits<double>::infinity();
  for (const auto& [id, c] : containers_) {
    if (c.state != ContainerState::kIdle) continue;
    if (!exclude_function.empty() && c.function == exclude_function) continue;
    if (c.idle_since < oldest) {
      oldest = c.idle_since;
      victim = id;
    }
  }
  if (victim == 0) return false;
  ++evictions_;
  destroy(victim);
  return true;
}

std::optional<ContainerId> ContainerPool::acquire_idle(
    const std::string& function) {
  // Deliberately unscoped: this is the per-invocation fast path (a map
  // lookup), and a profiler scope here would cost more than it measures.
  // Container *lifecycle* bookkeeping (start/evict/destroy/expire) carries
  // the kServerlessPool scopes.
  auto it = idle_by_fn_.find(function);
  if (it == idle_by_fn_.end() || it->second.empty()) return std::nullopt;
  const ContainerId id = it->second.back();
  mark_busy(id);
  return id;
}

void ContainerPool::mark_busy(ContainerId id) {
  Container& c = get_mutable(id);
  AMOEBA_EXPECTS_MSG(c.state == ContainerState::kIdle,
                     "only idle containers can take work");
  auto& idles = idle_by_fn_[c.function];
  idles.erase(std::remove(idles.begin(), idles.end(), id), idles.end());
  if (c.expiry_event != sim::kNoEvent) {
    engine_.cancel(c.expiry_event);
    c.expiry_event = sim::kNoEvent;
  }
  c.state = ContainerState::kBusy;
  ++c.invocations_served;
  counts_by_fn_[c.function].idle -= 1;
  counts_by_fn_[c.function].busy += 1;
  check_counts(counts_by_fn_[c.function]);
}

void ContainerPool::release_to_idle(ContainerId id) {
  // Unscoped like acquire_idle: per-invocation fast path.
  Container& c = get_mutable(id);
  AMOEBA_EXPECTS(c.state == ContainerState::kBusy);
  c.state = ContainerState::kIdle;
  c.idle_since = engine_.now();
  counts_by_fn_[c.function].busy -= 1;
  counts_by_fn_[c.function].idle += 1;
  check_counts(counts_by_fn_[c.function]);
  idle_by_fn_[c.function].push_back(id);
  c.expiry_event =
      engine_.schedule_in(keep_alive_s_, [this, id] { expire(id); });
}

void ContainerPool::destroy(ContainerId id) {
  AMOEBA_PROF_SCOPE(kServerlessPool);
  auto it = containers_.find(id);
  AMOEBA_EXPECTS_MSG(it != containers_.end(), "destroying unknown container");
  Container& c = it->second;
  switch (c.state) {
    case ContainerState::kStarting:
      counts_by_fn_[c.function].starting -= 1;
      break;
    case ContainerState::kIdle: {
      counts_by_fn_[c.function].idle -= 1;
      auto& idles = idle_by_fn_[c.function];
      idles.erase(std::remove(idles.begin(), idles.end(), id), idles.end());
      break;
    }
    case ContainerState::kBusy:
      counts_by_fn_[c.function].busy -= 1;
      break;
  }
  check_counts(counts_by_fn_[c.function]);
  if (c.expiry_event != sim::kNoEvent) engine_.cancel(c.expiry_event);
  mem_gauge_by_fn_.at(c.function).add(engine_.now(), -c.memory_mb);
  memory_.release(c.memory_mb);
  containers_.erase(it);
}

int ContainerPool::destroy_idle(const std::string& function) {
  std::vector<ContainerId> victims;
  for (const auto& [id, c] : containers_) {
    if (c.function == function && c.state == ContainerState::kIdle) {
      victims.push_back(id);
    }
  }
  for (ContainerId id : victims) destroy(id);
  return static_cast<int>(victims.size());
}

void ContainerPool::expire(ContainerId id) {
  AMOEBA_PROF_SCOPE(kServerlessPool);
  auto it = containers_.find(id);
  if (it == containers_.end()) return;
  if (it->second.state != ContainerState::kIdle) return;
  it->second.expiry_event = sim::kNoEvent;
  destroy(id);
}

const Container& ContainerPool::get(ContainerId id) const {
  auto it = containers_.find(id);
  AMOEBA_EXPECTS_MSG(it != containers_.end(), "unknown container id");
  return it->second;
}

Container& ContainerPool::get_mutable(ContainerId id) {
  auto it = containers_.find(id);
  AMOEBA_EXPECTS_MSG(it != containers_.end(), "unknown container id");
  return it->second;
}

PoolCounts ContainerPool::counts(const std::string& function) const {
  auto it = counts_by_fn_.find(function);
  return it == counts_by_fn_.end() ? PoolCounts{} : it->second;
}

PoolCounts ContainerPool::total_counts() const {
  PoolCounts total;
  for (const auto& [fn, c] : counts_by_fn_) {
    total.starting += c.starting;
    total.idle += c.idle;
    total.busy += c.busy;
  }
  return total;
}

int ContainerPool::headroom(double memory_mb) const {
  AMOEBA_EXPECTS(memory_mb > 0.0);
  return static_cast<int>(memory_.available() / memory_mb);
}

std::vector<ContainerId> ContainerPool::starting_ids(
    const std::string& function) const {
  std::vector<ContainerId> out;
  for (const auto& [id, c] : containers_) {
    if (c.function == function && c.state == ContainerState::kStarting) {
      out.push_back(id);
    }
  }
  return out;
}

double ContainerPool::memory_mb_seconds(const std::string& function,
                                        sim::Time now) {
  auto it = mem_gauge_by_fn_.find(function);
  if (it == mem_gauge_by_fn_.end()) return 0.0;
  return it->second.integral(now);
}

double ContainerPool::memory_in_use_mb(const std::string& function) const {
  auto it = mem_gauge_by_fn_.find(function);
  return it == mem_gauge_by_fn_.end() ? 0.0 : it->second.value();
}

}  // namespace amoeba::serverless
