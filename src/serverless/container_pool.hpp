// Container pool: creation, warm reuse, keep-alive expiry, LRU eviction.
//
// The pool owns all containers on the serverless node and the memory
// reservation that caps their number (paper §IV-A's n_max: "an upper limit
// for container quantity ... limited by the resource consumption"). The
// platform layers dispatch and invocation execution on top.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serverless/container.hpp"
#include "sim/counting_resource.hpp"
#include "sim/engine.hpp"
#include "sim/fault_injector.hpp"
#include "stats/gauge.hpp"

namespace amoeba::serverless {

struct PoolCounts {
  int starting = 0;
  int idle = 0;
  int busy = 0;
  [[nodiscard]] int total() const noexcept { return starting + idle + busy; }
};

class ContainerPool {
 public:
  /// `memory` is the node's container-memory budget; `keep_alive_s` the
  /// warm-container TTL.
  ContainerPool(sim::Engine& engine, double memory_capacity_mb,
                double keep_alive_s);

  /// Begin a cold start for `function`. Reserves `memory_mb` immediately;
  /// after `boot_s` simulated seconds the container turns idle and
  /// `on_ready(id)` fires. Returns nullopt if memory is insufficient
  /// (caller may evict_lru_idle() and retry).
  ///
  /// With a fault injector attached the boot may straggle (inflated boot
  /// time) or fail: a failed boot holds its memory for the full (possibly
  /// inflated) boot window, then the container is destroyed and
  /// `on_failed(id)` fires instead of `on_ready`.
  std::optional<ContainerId> start(
      const std::string& function, double memory_mb, double boot_s,
      std::function<void(ContainerId)> on_ready,
      std::function<void(ContainerId)> on_failed = nullptr);

  /// Attach the fault injector (non-owning; nullptr disables injection).
  void set_fault_injector(sim::FaultInjector* faults) noexcept {
    faults_ = faults;
  }

  /// True if `memory_mb` could be reserved right now.
  [[nodiscard]] bool memory_available(double memory_mb) const;

  /// Evict the least-recently-used idle container (optionally excluding one
  /// function's containers). Returns true if something was evicted.
  bool evict_lru_idle(const std::string& exclude_function = {});

  /// Pop the most-recently-used idle container of `function` (LIFO reuse
  /// keeps the warm set small). Returns nullopt if none idle.
  std::optional<ContainerId> acquire_idle(const std::string& function);

  /// Return a busy container to the idle set and arm its keep-alive timer.
  void release_to_idle(ContainerId id);

  /// Destroy a container in any state and free its memory.
  void destroy(ContainerId id);

  /// Destroy every idle container of `function` (switch-back reclaim).
  /// Returns how many were destroyed.
  int destroy_idle(const std::string& function);

  /// Mark an idle container busy (used when assigning work).
  void mark_busy(ContainerId id);

  [[nodiscard]] const Container& get(ContainerId id) const;
  [[nodiscard]] Container& get_mutable(ContainerId id);

  [[nodiscard]] PoolCounts counts(const std::string& function) const;
  [[nodiscard]] PoolCounts total_counts() const;

  /// Number of additional containers of `memory_mb` that could start now.
  [[nodiscard]] int headroom(double memory_mb) const;

  /// Ids of `function`'s containers still in the kStarting state
  /// (deterministic ascending-id order). Used for abort reclamation.
  [[nodiscard]] std::vector<ContainerId> starting_ids(
      const std::string& function) const;

  [[nodiscard]] double memory_capacity_mb() const noexcept {
    return memory_.capacity();
  }
  [[nodiscard]] double memory_in_use_mb() const noexcept {
    return memory_.in_use();
  }

  /// Per-function container-memory integral (MB·s) through `now`.
  double memory_mb_seconds(const std::string& function, sim::Time now);

  /// Memory currently reserved by `function`'s containers (MB).
  [[nodiscard]] double memory_in_use_mb(const std::string& function) const;

  /// High-water marks since construction: most containers alive at once and
  /// most memory reserved at once. Cluster invariant tests assert the count
  /// never exceeded the node-wide container budget.
  [[nodiscard]] int peak_total_containers() const noexcept {
    return peak_total_containers_;
  }
  [[nodiscard]] double peak_memory_in_use_mb() const noexcept {
    return peak_memory_in_use_mb_;
  }

  [[nodiscard]] std::uint64_t cold_starts() const noexcept {
    return cold_starts_;
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::uint64_t boot_failures() const noexcept {
    return boot_failures_;
  }

 private:
  void expire(ContainerId id);

  sim::Engine& engine_;
  sim::CountingResource memory_;
  double keep_alive_s_;
  ContainerId next_id_ = 1;
  // All per-function maps iterate in sorted-key order: total_counts()
  // feeds cluster summaries and admission decisions, and the memory
  // gauges feed accounting integrals, so iteration order is
  // trace-affecting. std::unordered_map here would make summaries (and,
  // through float-sum non-associativity, trace hashes) depend on hash
  // seed and insertion order; tools/audit's ordering checker bans it.
  std::map<ContainerId, Container> containers_;  // deterministic iteration
  std::map<std::string, std::vector<ContainerId>> idle_by_fn_;
  std::map<std::string, PoolCounts> counts_by_fn_;
  std::map<std::string, stats::IntegratedGauge> mem_gauge_by_fn_;
  std::uint64_t cold_starts_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t boot_failures_ = 0;
  int peak_total_containers_ = 0;
  double peak_memory_in_use_mb_ = 0.0;
  sim::FaultInjector* faults_ = nullptr;
};

}  // namespace amoeba::serverless
