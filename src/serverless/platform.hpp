// Serverless (FaaS) platform model — the OpenWhisk stand-in.
//
// Queries queue FIFO per function; idle warm containers are reused (LIFO),
// otherwise a cold start begins if the pool has memory (evicting the
// least-recently-used idle container of another function when it does not).
// Like OpenWhisk's scheduler, an arrival that triggers a cold start is
// BOUND to the container being created for it and waits out the full boot
// even if another container frees up earlier — this is precisely why the
// paper's prewarm strategy matters (§V-A / Fig. 16).
// An invocation runs through the phase machine of paper Fig. 4:
//
//   [queue] -> [cold start?] -> processing overhead -> code load (disk)
//           -> execute (cpu -> io -> net) -> result post (net) -> done
//
// All resource-bound phases draw on the node's shared FairShareResources,
// so cross-function interference, latency surfaces, and the no-fixed-
// switch-load effect (paper §II-D) all emerge from the physics rather than
// being scripted.
#pragma once

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "serverless/container_pool.hpp"
#include "serverless/invocation.hpp"
#include "sim/engine.hpp"
#include "sim/fair_share.hpp"
#include "sim/random.hpp"
#include "stats/gauge.hpp"
#include "workload/function_profile.hpp"

namespace amoeba::serverless {

struct PlatformConfig {
  double cores = 40.0;              ///< Table II: 40-core node
  double pool_memory_mb = 32768.0;  ///< memory budget for containers
  double disk_bps = 2.0e9;          ///< NVMe bandwidth
  double net_bps = 3.125e9;         ///< 25 Gb/s NIC
  double container_core_cap = 1.0;  ///< one core per container
  /// CPU interference coefficient (shared LLC / memory bandwidth on the
  /// multi-tenant node): per-stream compute rate is scaled by
  /// 1/(1 + coeff · utilization). This is what makes the paper's
  /// "CPU-Memory" pressure degrade latency gradually rather than only at
  /// full core saturation.
  double cpu_interference = 0.0;
  /// Fraction of raw device bandwidth a containerized function actually
  /// achieves (overlay-fs / virtualization tax; Wang et al., ATC'18,
  /// measured serverless IO well below VM IO). 1.0 = no tax.
  double io_efficiency = 1.0;
  double net_efficiency = 1.0;
  double cold_start_mean_s = 1.0;   ///< paper §V-A: "one to three seconds"
  double cold_start_cv = 0.25;
  double keep_alive_s = 60.0;       ///< warm-container TTL
  /// Failure injection: probability that a container dies after finishing a
  /// query, forcing an "accidental" cold start later (paper §VI-B).
  double crash_after_completion_p = 0.0;

  void validate() const;
};

struct FunctionStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cold_hits = 0;
  std::uint64_t boot_failures = 0;  ///< injected cold-start failures
  /// Containers a prewarm() call asked for but could not start (pool memory
  /// exhausted or the per-function n_max reached) — the admission-arbitration
  /// "deferred" signal a cluster run surfaces per service.
  std::uint64_t prewarm_denied = 0;
  double cpu_core_seconds = 0.0;    ///< actual compute consumed
};

class ServerlessPlatform {
 public:
  ServerlessPlatform(sim::Engine& engine, PlatformConfig cfg, sim::Rng rng);

  /// Register a function before submitting queries for it.
  /// `max_containers` == 0 means "bounded only by pool memory" (otherwise
  /// it is the paper's per-function n_max).
  void register_function(const workload::FunctionProfile& profile,
                         int max_containers = 0);

  [[nodiscard]] bool has_function(const std::string& name) const;
  [[nodiscard]] const workload::FunctionProfile& profile(
      const std::string& name) const;
  /// Registered function names (deterministic map order).
  [[nodiscard]] std::vector<std::string> function_names() const;

  /// Attach the observability sink (non-owning; nullptr disables). Each
  /// container boot then becomes an async span on "svc:<fn>/pool".
  void set_observer(amoeba::obs::Observer* observer) { obs_ = observer; }

  /// Attach the fault injector to the container pool (non-owning; nullptr
  /// disables). Failed boots re-queue any bound query and re-pump.
  void set_fault_injector(sim::FaultInjector* faults) noexcept {
    pool_.set_fault_injector(faults);
  }

  /// Submit one query; `on_done` fires at completion with the full record.
  void submit(const std::string& function, QueryCompletionFn on_done);

  /// Ensure at least `count` containers (idle + starting + busy) exist for
  /// `function`, cold-starting the difference. Returns how many new
  /// containers actually began starting (may be limited by memory).
  int prewarm(const std::string& function, int count);

  /// Release the function's resources eagerly (paper §V-B shutdown signal
  /// S_sd): destroys its idle containers now, and containers finishing
  /// later are destroyed instead of kept warm, until unretire().
  void retire(const std::string& function);
  void unretire(const std::string& function);
  [[nodiscard]] bool retired(const std::string& function) const;

  /// Abort-path reclamation: destroy the function's idle containers and any
  /// starting containers not bound to a query (those still serve the query
  /// that caused them). Returns how many containers were destroyed.
  int release_prewarmed(const std::string& function);

  /// Containers of `function` that are idle or still starting — the
  /// "warm capacity" the hybrid engine waits on before switching.
  [[nodiscard]] PoolCounts counts(const std::string& function) const {
    return pool_.counts(function);
  }
  [[nodiscard]] PoolCounts total_counts() const {
    return pool_.total_counts();
  }
  [[nodiscard]] std::size_t queue_length(const std::string& function) const;

  [[nodiscard]] const FunctionStats& stats(const std::string& function) const;

  /// Per-function resource usage integrals for Fig. 11/13/14 accounting.
  double cpu_core_seconds(const std::string& function) const;
  double memory_mb_seconds(const std::string& function, sim::Time now);

  /// Ground-truth instantaneous pressures (tests/validation only; the
  /// Amoeba controller must not read these — it estimates them via meters).
  [[nodiscard]] double true_cpu_pressure() const { return cpu_.pressure(); }
  [[nodiscard]] double true_disk_pressure() const { return disk_.pressure(); }
  [[nodiscard]] double true_net_pressure() const { return net_.pressure(); }
  /// Ground-truth instantaneous utilizations (allocated rate / capacity).
  [[nodiscard]] double true_cpu_utilization() const {
    return cpu_.utilization();
  }
  [[nodiscard]] double true_disk_utilization() const {
    return disk_.utilization();
  }
  [[nodiscard]] double true_net_utilization() const {
    return net_.utilization();
  }
  /// Ground-truth per-function demand attribution over {cpu, disk, net},
  /// each as a fraction of that resource's capacity. Fed by the stream tags
  /// every invocation phase carries, so it reflects what is *live* right
  /// now. Tests/validation only — the controller estimates pressure through
  /// meters, exactly as on real hardware.
  [[nodiscard]] std::array<double, 3> true_pressure_of(
      const std::string& function) const;
  /// Pressure on each resource caused by everything except `function` —
  /// the live aggregate load of co-located tenants.
  [[nodiscard]] std::array<double, 3> true_external_pressure(
      const std::string& function) const;

  /// Ground-truth busy-capacity integrals (work served so far); their time
  /// derivative over a window is the resource's average busy fraction.
  double true_cpu_busy_integral(sim::Time now) const {
    return cpu_.busy_capacity_seconds(now) / cfg_.cores;
  }
  double true_disk_busy_integral(sim::Time now) const {
    return disk_.busy_capacity_seconds(now) / cfg_.disk_bps;
  }
  double true_net_busy_integral(sim::Time now) const {
    return net_.busy_capacity_seconds(now) / cfg_.net_bps;
  }

  [[nodiscard]] const PlatformConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] ContainerPool& pool() noexcept { return pool_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

 private:
  struct Pending {
    std::uint64_t id;
    sim::Time arrival;
    QueryCompletionFn on_done;
  };

  struct FunctionState {
    workload::FunctionProfile profile;
    int max_containers = 0;  // 0 = unlimited
    bool retired = false;
    std::deque<Pending> queue;
    /// Queries bound to a specific cold-starting container (OpenWhisk
    /// semantics): served when that container boots, not before.
    std::map<ContainerId, Pending> bound;
    FunctionStats stats;
  };

  void on_container_ready(const std::string& function, ContainerId cid);
  void on_container_failed(const std::string& function, ContainerId cid);
  void trace_container(const std::string& function, ContainerId cid,
                       bool begin);

  FunctionState& state_of(const std::string& function);
  const FunctionState& state_of(const std::string& function) const;

  /// Try to move queued queries of `function` onto containers; cold-start
  /// new containers when allowed.
  void pump(const std::string& function);

  /// True if one more container may start for this function right now
  /// (memory + n_max), evicting an idle foreign container if necessary.
  bool try_make_room(FunctionState& st);

  void run_invocation(FunctionState& st, ContainerId cid, Pending pending);
  void finish_invocation(FunctionState& st, ContainerId cid,
                         QueryRecord record, QueryCompletionFn on_done);

  double sample_cold_start();

  sim::Engine& engine_;
  PlatformConfig cfg_;
  sim::Rng rng_;
  sim::FairShareResource cpu_;
  sim::FairShareResource disk_;
  sim::FairShareResource net_;
  ContainerPool pool_;
  std::map<std::string, FunctionState> functions_;
  amoeba::obs::Observer* obs_ = nullptr;
  std::uint64_t next_query_id_ = 1;
};

}  // namespace amoeba::serverless
