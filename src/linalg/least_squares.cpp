#include "linalg/least_squares.hpp"

#include <cmath>

namespace amoeba::linalg {

std::vector<double> solve_spd(const Matrix& m, const std::vector<double>& rhs) {
  AMOEBA_EXPECTS(m.is_square());
  const std::size_t n = m.rows();
  AMOEBA_EXPECTS(rhs.size() == n);

  // Cholesky: m = L Lᵀ.
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = m(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        AMOEBA_EXPECTS_MSG(sum > 0.0, "matrix is not positive definite");
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }

  // Forward substitution L y = rhs.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = rhs[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution Lᵀ x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

std::vector<double> solve_least_squares(const Matrix& a,
                                        const std::vector<double>& b,
                                        double ridge) {
  AMOEBA_EXPECTS(a.rows() >= 1);
  AMOEBA_EXPECTS(b.size() == a.rows());
  AMOEBA_EXPECTS(ridge >= 0.0);
  const Matrix at = a.transposed();
  Matrix ata = at * a;
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += ridge;
  const std::vector<double> atb = at.apply(b);
  return solve_spd(ata, atb);
}

}  // namespace amoeba::linalg
