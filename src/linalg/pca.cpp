#include "linalg/pca.hpp"

#include <cmath>
#include <numeric>

#include "linalg/jacobi_eigen.hpp"
#include "linalg/least_squares.hpp"

namespace amoeba::linalg {

double PcaModel::explained_variance() const {
  const double total =
      std::accumulate(eigenvalues.begin(), eigenvalues.end(), 0.0);
  if (total <= 0.0) return 1.0;
  double kept = 0.0;
  for (std::size_t i = 0; i < retained; ++i) kept += eigenvalues[i];
  return kept / total;
}

std::vector<double> PcaModel::transform(const std::vector<double>& x) const {
  AMOEBA_EXPECTS(x.size() == means.size());
  const std::size_t d = means.size();
  std::vector<double> z(d);
  for (std::size_t i = 0; i < d; ++i) {
    z[i] = (x[i] - means[i]) / scales[i];
  }
  std::vector<double> scores(retained, 0.0);
  for (std::size_t c = 0; c < retained; ++c) {
    for (std::size_t i = 0; i < d; ++i) scores[c] += components(i, c) * z[i];
  }
  return scores;
}

PcaModel fit_pca(const Matrix& samples, double min_explained) {
  AMOEBA_EXPECTS(samples.rows() >= 2);
  AMOEBA_EXPECTS(min_explained > 0.0 && min_explained <= 1.0);
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();

  PcaModel model;
  model.means.assign(d, 0.0);
  model.scales.assign(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    double m = 0.0;
    for (std::size_t i = 0; i < n; ++i) m += samples(i, j);
    model.means[j] = m / static_cast<double>(n);
  }
  for (std::size_t j = 0; j < d; ++j) {
    double s2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dev = samples(i, j) - model.means[j];
      s2 += dev * dev;
    }
    s2 /= static_cast<double>(n - 1);
    model.scales[j] = s2 > 1e-24 ? std::sqrt(s2) : 1.0;
  }

  // Correlation matrix of standardized features.
  Matrix corr(d, d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < d; ++a) {
      const double za = (samples(i, a) - model.means[a]) / model.scales[a];
      for (std::size_t b = a; b < d; ++b) {
        const double zb = (samples(i, b) - model.means[b]) / model.scales[b];
        corr(a, b) += za * zb;
      }
    }
  }
  for (std::size_t a = 0; a < d; ++a)
    for (std::size_t b = a; b < d; ++b) {
      const double v = corr(a, b) / static_cast<double>(n - 1);
      corr(a, b) = v;
      corr(b, a) = v;
    }

  EigenDecomposition eig = jacobi_eigen(corr);
  // A correlation matrix is positive semi-definite: anything below a tiny
  // rounding margin signals a broken decomposition, not noise. Clamp only
  // the rounding dust.
  for (auto& v : eig.values) {
    AMOEBA_INVARIANT_VALS(v >= -1e-8 * static_cast<double>(d), v, d);
    v = std::max(v, 0.0);
  }
  for (std::size_t i = 1; i < eig.values.size(); ++i) {
    AMOEBA_INVARIANT_MSG(eig.values[i] <= eig.values[i - 1],
                         "eigenvalues must be sorted descending");
  }

  model.eigenvalues = eig.values;
  model.components = eig.vectors;

  const double total =
      std::accumulate(eig.values.begin(), eig.values.end(), 0.0);
  double kept = 0.0;
  model.retained = 0;
  for (std::size_t i = 0; i < d; ++i) {
    kept += eig.values[i];
    ++model.retained;
    if (total <= 0.0 || kept / total >= min_explained) break;
  }
  AMOEBA_ENSURES_VALS(model.retained >= 1 && model.retained <= d,
                      model.retained, d);
  const double explained = model.explained_variance();
  AMOEBA_ENSURES_VALS(explained >= 0.0 && explained <= 1.0 + 1e-12, explained);
  return model;
}

double PcrModel::predict(const std::vector<double>& x) const {
  const auto scores = pca.transform(x);
  return intercept + dot(scores, score_coeffs);
}

std::vector<double> PcrModel::raw_coefficients() const {
  const std::size_t d = pca.means.size();
  std::vector<double> beta(d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t c = 0; c < pca.retained; ++c) {
      beta[i] += pca.components(i, c) * score_coeffs[c];
    }
    beta[i] /= pca.scales[i];
  }
  return beta;
}

double PcrModel::raw_intercept() const {
  const auto beta = raw_coefficients();
  return intercept - dot(beta, pca.means);
}

PcrModel fit_pcr(const Matrix& x, const std::vector<double>& y,
                 double min_explained, double ridge) {
  AMOEBA_EXPECTS(x.rows() == y.size());
  AMOEBA_EXPECTS(x.rows() >= 2);

  PcrModel model;
  model.pca = fit_pca(x, min_explained);
  const std::size_t n = x.rows();
  const std::size_t k = model.pca.retained;

  // Design matrix of scores, plus intercept handled by centering y.
  Matrix scores(n, k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = model.pca.transform(x.row_vector(i));
    for (std::size_t c = 0; c < k; ++c) scores(i, c) = s[c];
  }
  double ymean = 0.0;
  for (double v : y) ymean += v;
  ymean /= static_cast<double>(n);
  std::vector<double> yc(n);
  for (std::size_t i = 0; i < n; ++i) yc[i] = y[i] - ymean;

  model.score_coeffs = solve_least_squares(scores, yc, ridge);
  model.intercept = ymean;  // scores are zero-mean by construction
  return model;
}

}  // namespace amoeba::linalg
