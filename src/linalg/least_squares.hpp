// Linear least squares via normal equations with optional ridge damping.
// Problem sizes here are tiny (<= 16 unknowns), so Cholesky on AᵀA + λI is
// appropriate and keeps the dependency surface at zero.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace amoeba::linalg {

/// Solve min ||A x - b||² + ridge ||x||². A is n×d (n >= 1), b has n
/// entries. `ridge >= 0`; a small positive value guards rank deficiency.
[[nodiscard]] std::vector<double> solve_least_squares(const Matrix& a,
                                                      const std::vector<double>& b,
                                                      double ridge = 0.0);

/// Cholesky solve of the SPD system m x = rhs. Throws ContractError when m
/// is not positive definite within numerical tolerance.
[[nodiscard]] std::vector<double> solve_spd(const Matrix& m,
                                            const std::vector<double>& rhs);

}  // namespace amoeba::linalg
