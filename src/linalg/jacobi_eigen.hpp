// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
// Robust and simple for the small (<= ~16x16) covariance matrices PCA sees.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace amoeba::linalg {

struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column i of `vectors` is the unit eigenvector for values[i].
  Matrix vectors;
};

/// Decompose a symmetric matrix. Throws ContractError if `a` is not square
/// or not symmetric within `symmetry_tol`.
[[nodiscard]] EigenDecomposition jacobi_eigen(const Matrix& a,
                                              double symmetry_tol = 1e-9,
                                              int max_sweeps = 64);

}  // namespace amoeba::linalg
