// Principal Component Analysis and Principal Component Regression.
//
// The multi-resource contention monitor (paper §VI-A) uses PCA to merge
// closely-related per-resource interference signals into a few pairwise-
// uncorrelated components, then regresses observed latency on component
// scores and maps the coefficients back to per-resource weights for Eq. 6.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace amoeba::linalg {

struct PcaModel {
  std::vector<double> means;          ///< feature means (size d)
  std::vector<double> scales;         ///< feature std-devs used to standardize
  std::vector<double> eigenvalues;    ///< descending, size d
  Matrix components;                  ///< d×d; column i = i-th component
  std::size_t retained = 0;           ///< components kept

  /// Fraction of total variance explained by the first `retained`
  /// components.
  [[nodiscard]] double explained_variance() const;

  /// Project a raw observation onto the retained components.
  [[nodiscard]] std::vector<double> transform(
      const std::vector<double>& x) const;
};

/// Fit PCA on row-major samples (n×d, n >= 2). Features are standardized
/// (zero mean, unit variance; zero-variance features are passed through
/// unscaled). `min_explained` in (0, 1] selects how many components to
/// retain.
[[nodiscard]] PcaModel fit_pca(const Matrix& samples,
                               double min_explained = 0.95);

struct PcrModel {
  PcaModel pca;
  std::vector<double> score_coeffs;  ///< regression coeffs in PC space
  double intercept = 0.0;

  [[nodiscard]] double predict(const std::vector<double>& x) const;

  /// Equivalent coefficients in the original feature space, i.e. β such
  /// that prediction ≈ intercept_raw + βᵀx. This is what becomes the
  /// per-resource weights w in Eq. 6.
  [[nodiscard]] std::vector<double> raw_coefficients() const;
  [[nodiscard]] double raw_intercept() const;
};

/// Principal-component regression of y on X (n×d, n >= d+1 recommended).
[[nodiscard]] PcrModel fit_pcr(const Matrix& x, const std::vector<double>& y,
                               double min_explained = 0.95,
                               double ridge = 1e-8);

}  // namespace amoeba::linalg
