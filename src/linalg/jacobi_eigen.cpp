#include "linalg/jacobi_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace amoeba::linalg {

EigenDecomposition jacobi_eigen(const Matrix& a, double symmetry_tol,
                                int max_sweeps) {
  AMOEBA_EXPECTS(a.is_square());
  AMOEBA_EXPECTS_MSG(a.is_symmetric(symmetry_tol),
                     "jacobi_eigen requires a symmetric matrix");
  AMOEBA_EXPECTS_VALS(max_sweeps >= 1, max_sweeps);
  const std::size_t n = a.rows();
  Matrix m = a;
  Matrix v = Matrix::identity(n);

  auto off_diagonal_norm = [&m, n] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += m(i, j) * m(i, j);
    return std::sqrt(2.0 * s);
  };

  const double scale = std::max(m.frobenius_norm(), 1e-300);
  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= 1e-14 * scale) {
      converged = true;
      break;
    }
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        // Classic stable rotation angle computation.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Cyclic Jacobi converges quadratically; hitting the sweep cap with a
  // large off-diagonal residual means the input was pathological and the
  // eigenpairs below would silently mis-weight the PCA calibration.
  if (!converged) {
    AMOEBA_ENSURES_VALS(off_diagonal_norm() <= 1e-8 * scale,
                        off_diagonal_norm(), scale, max_sweeps);
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = m(i, i);
  std::sort(order.begin(), order.end(),
            [&diag](std::size_t i, std::size_t j) { return diag[i] > diag[j]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    out.values[c] = diag[order[c]];
    // Fix the sign convention: largest-magnitude component positive, so the
    // decomposition is deterministic across runs.
    const auto col = v.col_vector(order[c]);
    std::size_t imax = 0;
    for (std::size_t r = 1; r < n; ++r)
      if (std::abs(col[r]) > std::abs(col[imax])) imax = r;
    const double sign = col[imax] < 0.0 ? -1.0 : 1.0;
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, c) = sign * col[r];
  }
  return out;
}

}  // namespace amoeba::linalg
