#include "linalg/matrix.hpp"

#include <cmath>

namespace amoeba::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  AMOEBA_EXPECTS(rows > 0 && cols > 0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  AMOEBA_EXPECTS(rows.size() > 0);
  rows_ = rows.size();
  cols_ = rows.begin()->size();
  AMOEBA_EXPECTS(cols_ > 0);
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    AMOEBA_EXPECTS_MSG(r.size() == cols_, "ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::column(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  for (std::size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  AMOEBA_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  AMOEBA_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  AMOEBA_EXPECTS_MSG(cols_ == rhs.rows_, "dimension mismatch in product");
  Matrix out(rows_, rhs.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  AMOEBA_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  AMOEBA_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  for (auto& x : out.data_) x *= s;
  return out;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
  AMOEBA_EXPECTS(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
  return out;
}

std::vector<double> Matrix::row_vector(std::size_t r) const {
  AMOEBA_EXPECTS(r < rows_);
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

std::vector<double> Matrix::col_vector(std::size_t c) const {
  AMOEBA_EXPECTS(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  AMOEBA_EXPECTS(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

bool Matrix::is_symmetric(double tol) const {
  if (!is_square()) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  AMOEBA_EXPECTS(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

}  // namespace amoeba::linalg
