// Small dense row-major matrix. Sized for the monitor's PCA problems
// (3-10 dimensions, hundreds of samples) — clarity over BLAS-grade speed.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Construct from nested initializer lists (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Column vector from values.
  [[nodiscard]] static Matrix column(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator*(double s) const;

  /// Matrix * vector.
  [[nodiscard]] std::vector<double> apply(const std::vector<double>& v) const;

  [[nodiscard]] std::vector<double> row_vector(std::size_t r) const;
  [[nodiscard]] std::vector<double> col_vector(std::size_t c) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Max |a_ij - b_ij|.
  [[nodiscard]] static double max_abs_diff(const Matrix& a, const Matrix& b);

  [[nodiscard]] bool is_square() const noexcept { return rows_ == cols_; }
  /// True if max |a_ij - a_ji| <= tol.
  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Dot product of equal-length vectors.
[[nodiscard]] double dot(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Euclidean norm.
[[nodiscard]] double norm2(const std::vector<double>& v);

}  // namespace amoeba::linalg
