#include "kernels/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace amoeba::kernels {

unsigned kernel_threads(unsigned requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_chunks(std::size_t n, unsigned threads,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  AMOEBA_EXPECTS(fn != nullptr);
  if (n == 0) return;
  const auto workers = static_cast<std::size_t>(
      std::min<std::size_t>(kernel_threads(threads), n));
  if (workers <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace amoeba::kernels
