#include "kernels/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.hpp"

namespace amoeba::kernels {

unsigned kernel_threads(unsigned requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_chunks(std::size_t n, unsigned threads,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  AMOEBA_EXPECTS(fn != nullptr);
  if (n == 0) return;
  const auto workers = static_cast<std::size_t>(
      std::min<std::size_t>(kernel_threads(threads), n));
  if (workers <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  struct ErrorSlot {
    common::Mutex mutex;
    std::exception_ptr first_error AMOEBA_GUARDED_BY(mutex);
  } errors;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        common::MutexLock lock(errors.mutex);
        if (!errors.first_error) errors.first_error = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  std::exception_ptr err;
  {
    common::MutexLock lock(errors.mutex);
    err = errors.first_error;
  }
  if (err) std::rethrow_exception(err);
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = kernel_threads(threads);
  workers_.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    common::MutexLock lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  AMOEBA_EXPECTS(task != nullptr);
  {
    common::MutexLock lock(mutex_);
    AMOEBA_EXPECTS_MSG(!stop_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr err;
  {
    common::UniqueLock lock(mutex_);
    while (!queue_.empty() || in_flight_ != 0) all_done_.wait(lock);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  common::UniqueLock lock(mutex_);
  for (;;) {
    while (!stop_ && queue_.empty()) work_ready_.wait(lock);
    if (queue_.empty()) return;  // stop_ && drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    --in_flight_;
    if (err && !first_error_) first_error_ = err;
    if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
  }
}

}  // namespace amoeba::kernels
