#include "kernels/native_meters.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/assert.hpp"
#include "kernels/cloud_stor.hpp"
#include "kernels/dd_io.hpp"
#include "kernels/float_op.hpp"

namespace amoeba::kernels {

double run_native_meter_once(NativeMeterKind kind) {
  const auto t0 = std::chrono::steady_clock::now();
  switch (kind) {
    case NativeMeterKind::kCpu: {
      (void)run_float_op(400'000, 1);
      break;
    }
    case NativeMeterKind::kDiskIo: {
      (void)run_dd(4 << 20, 256 << 10);
      break;
    }
    case NativeMeterKind::kNetwork: {
      (void)run_cloud_stor(4 << 20, 64 << 10);
      break;
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<MeterLoadPoint> run_meter_under_load(
    NativeMeterKind kind, const std::vector<unsigned>& background_sweep,
    std::size_t repetitions) {
  AMOEBA_EXPECTS(repetitions > 0);
  std::vector<MeterLoadPoint> out;
  out.reserve(background_sweep.size());

  for (unsigned bg : background_sweep) {
    std::atomic<bool> stop{false};
    std::vector<std::thread> spinners;
    spinners.reserve(bg);
    for (unsigned i = 0; i < bg; ++i) {
      spinners.emplace_back([&stop] {
        volatile double sink = 0.0;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int k = 0; k < 4096; ++k) sink = sink + 1e-9;
        }
      });
    }

    MeterLoadPoint point;
    point.background_threads = bg;
    double sum = 0.0;
    for (std::size_t r = 0; r < repetitions; ++r) {
      const double lat = run_native_meter_once(kind);
      sum += lat;
      point.max_latency_s = std::max(point.max_latency_s, lat);
    }
    point.mean_latency_s = sum / static_cast<double>(repetitions);

    stop.store(true);
    for (auto& t : spinners) t.join();
    out.push_back(point);
  }
  return out;
}

}  // namespace amoeba::kernels
