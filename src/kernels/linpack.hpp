// FunctionBench `linpack` kernel: solve Ax = b via LU decomposition with
// partial pivoting, reporting the standard LINPACK residual check.
#pragma once

#include <cstddef>
#include <vector>

namespace amoeba::kernels {

struct LinpackResult {
  double residual = 0.0;       ///< ||Ax - b||_inf
  double normalized_residual = 0.0;  ///< residual / (n * ||A|| * ||x|| * eps)
  double seconds = 0.0;
  double gflops = 0.0;
};

/// Solve a deterministic dense n×n system. `threads` parallelizes the
/// trailing-submatrix update of the factorization.
[[nodiscard]] LinpackResult run_linpack(std::size_t n, unsigned threads = 1);

/// Exposed for tests: LU-solve the given system in place. `a` is row-major
/// n×n (destroyed), `b` length n (becomes x). Returns false if singular.
[[nodiscard]] bool lu_solve(std::vector<double>& a, std::vector<double>& b,
                            std::size_t n, unsigned threads = 1);

}  // namespace amoeba::kernels
