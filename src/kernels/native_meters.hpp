// Host-level contention meters — the native analogue of the paper's
// "delicate functions" (§IV-B), runnable on a real machine.
//
// Each meter executes a small fixed-work probe and reports its latency;
// under co-located load the latency inflates exactly like the simulated
// meters' curves. `run_meter_under_load` demonstrates the calibration
// experiment on the host itself.
#pragma once

#include <cstddef>
#include <vector>

namespace amoeba::kernels {

enum class NativeMeterKind { kCpu, kDiskIo, kNetwork };

/// One probe execution; returns its wall-clock latency in seconds.
[[nodiscard]] double run_native_meter_once(NativeMeterKind kind);

struct MeterLoadPoint {
  unsigned background_threads = 0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;
};

/// Fig. 8 on the host: run the probe `repetitions` times while
/// `background_threads` CPU-spinner threads load the machine, for each
/// thread count in `background_sweep`.
[[nodiscard]] std::vector<MeterLoadPoint> run_meter_under_load(
    NativeMeterKind kind, const std::vector<unsigned>& background_sweep,
    std::size_t repetitions = 5);

}  // namespace amoeba::kernels
