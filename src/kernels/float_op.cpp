#include "kernels/float_op.hpp"

#include <atomic>
#include <chrono>
#include <cmath>

#include "common/assert.hpp"
#include "kernels/thread_pool.hpp"

namespace amoeba::kernels {

FloatOpResult run_float_op(std::size_t iterations, unsigned threads) {
  AMOEBA_EXPECTS(iterations > 0);
  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<double> total{0.0};

  parallel_chunks(iterations, threads, [&](std::size_t begin, std::size_t end) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      // The FunctionBench float body: chained transcendentals on a value
      // derived from the index, so iterations are independent.
      const double x = 0.5 + static_cast<double>(i % 1000) * 1e-3;
      acc += std::sqrt(std::sin(x) * std::sin(x) + std::cos(x) * std::cos(x) +
                       x);
    }
    double expected = total.load(std::memory_order_relaxed);
    while (!total.compare_exchange_weak(expected, expected + acc)) {
    }
  });

  FloatOpResult out;
  out.checksum = total.load();
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace amoeba::kernels
