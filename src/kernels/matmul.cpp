#include "kernels/matmul.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "kernels/thread_pool.hpp"

namespace amoeba::kernels {

std::vector<double> matmul(const std::vector<double>& a,
                           const std::vector<double>& b, std::size_t n,
                           unsigned threads, std::size_t block) {
  AMOEBA_EXPECTS(n > 0);
  AMOEBA_EXPECTS(block > 0);
  AMOEBA_EXPECTS(a.size() == n * n && b.size() == n * n);
  std::vector<double> c(n * n, 0.0);

  // Parallelize over row blocks; each worker owns disjoint rows of C, so
  // no synchronization is needed inside the kernel.
  const std::size_t row_blocks = (n + block - 1) / block;
  parallel_chunks(row_blocks, threads, [&](std::size_t rb_begin,
                                           std::size_t rb_end) {
    for (std::size_t rb = rb_begin; rb < rb_end; ++rb) {
      const std::size_t i0 = rb * block;
      const std::size_t i1 = std::min(n, i0 + block);
      for (std::size_t k0 = 0; k0 < n; k0 += block) {
        const std::size_t k1 = std::min(n, k0 + block);
        for (std::size_t j0 = 0; j0 < n; j0 += block) {
          const std::size_t j1 = std::min(n, j0 + block);
          for (std::size_t i = i0; i < i1; ++i) {
            for (std::size_t k = k0; k < k1; ++k) {
              const double aik = a[i * n + k];
              if (aik == 0.0) continue;
              const double* brow = &b[k * n];
              double* crow = &c[i * n];
              for (std::size_t j = j0; j < j1; ++j) {
                crow[j] += aik * brow[j];
              }
            }
          }
        }
      }
    }
  });
  return c;
}

MatmulResult run_matmul(std::size_t n, unsigned threads, std::size_t block) {
  AMOEBA_EXPECTS(n > 0);
  std::vector<double> a(n * n), b(n * n);
  // Deterministic inputs: cheap LCG-style fill.
  std::uint64_t s = 0x2545F4914F6CDD1DULL;
  for (auto& x : a) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    x = static_cast<double>(s >> 40) * 0x1.0p-24 - 0.5;
  }
  for (auto& x : b) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    x = static_cast<double>(s >> 40) * 0x1.0p-24 - 0.5;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<double> c = matmul(a, b, n, threads, block);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  MatmulResult out;
  for (double x : c) out.checksum += x;
  out.seconds = seconds;
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  out.gflops = seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
  return out;
}

}  // namespace amoeba::kernels
