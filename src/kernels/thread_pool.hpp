// Minimal blocking fork-join helper for the native kernels.
//
// The kernels parallelize with plain std::thread (per the repository's
// HPC guides: explicit parallelism, no hidden runtime). `parallel_chunks`
// splits [0, n) into contiguous chunks, one per worker.
#pragma once

#include <cstddef>
#include <functional>

#include "common/assert.hpp"

namespace amoeba::kernels {

/// Run `fn(begin, end)` over contiguous chunks of [0, n) on up to
/// `threads` std::threads (0 = hardware concurrency). Blocks until all
/// chunks complete. Exceptions from workers propagate (first one wins).
void parallel_chunks(std::size_t n, unsigned threads,
                     const std::function<void(std::size_t, std::size_t)>& fn);

/// Effective worker count used by parallel_chunks.
[[nodiscard]] unsigned kernel_threads(unsigned requested) noexcept;

}  // namespace amoeba::kernels
