// Thread helpers for the native kernels and the experiment sweep layer.
//
// The kernels parallelize with plain std::thread (per the repository's
// HPC guides: explicit parallelism, no hidden runtime). `parallel_chunks`
// splits [0, n) into contiguous chunks, one per worker. `ThreadPool` is a
// persistent worker pool for callers that dispatch many small task batches
// (the sweep executor) and don't want a thread spawn per batch.
//
// All shared state is annotated for Clang's thread-safety analysis
// (common/mutex.hpp); the Clang CI leg compiles with
// -Werror=thread-safety, so a guarded member touched without its mutex is
// a build error, not a review comment.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/mutex.hpp"

namespace amoeba::kernels {

/// Run `fn(begin, end)` over contiguous chunks of [0, n) on up to
/// `threads` std::threads (0 = hardware concurrency). Blocks until all
/// chunks complete. Exceptions from workers propagate (first one wins).
void parallel_chunks(std::size_t n, unsigned threads,
                     const std::function<void(std::size_t, std::size_t)>& fn);

/// Effective worker count used by parallel_chunks.
[[nodiscard]] unsigned kernel_threads(unsigned requested) noexcept;

/// Fixed-size persistent worker pool. Tasks run in submission order (FIFO
/// dispatch) but complete in any order; `wait_idle` is the join point.
/// Exceptions thrown by tasks are captured and rethrown from `wait_idle`
/// (first one wins; the rest are dropped after running to completion).
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task. Never blocks on task execution.
  void submit(std::function<void()> task) AMOEBA_EXCLUDES(mutex_);

  /// Block until every submitted task has finished, then rethrow the first
  /// captured task exception, if any.
  void wait_idle() AMOEBA_EXCLUDES(mutex_);

 private:
  void worker_loop() AMOEBA_EXCLUDES(mutex_);

  common::Mutex mutex_;
  common::CondVar work_ready_;   // signalled on submit/stop
  common::CondVar all_done_;     // signalled when the pool drains
  std::deque<std::function<void()>> queue_ AMOEBA_GUARDED_BY(mutex_);
  std::size_t in_flight_ AMOEBA_GUARDED_BY(mutex_) = 0;  // dequeued, unfinished
  bool stop_ AMOEBA_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ AMOEBA_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;  // written only in ctor, joined in dtor
};

}  // namespace amoeba::kernels
