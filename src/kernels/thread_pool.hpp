// Thread helpers for the native kernels and the experiment sweep layer.
//
// The kernels parallelize with plain std::thread (per the repository's
// HPC guides: explicit parallelism, no hidden runtime). `parallel_chunks`
// splits [0, n) into contiguous chunks, one per worker. `ThreadPool` is a
// persistent worker pool for callers that dispatch many small task batches
// (the sweep executor) and don't want a thread spawn per batch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::kernels {

/// Run `fn(begin, end)` over contiguous chunks of [0, n) on up to
/// `threads` std::threads (0 = hardware concurrency). Blocks until all
/// chunks complete. Exceptions from workers propagate (first one wins).
void parallel_chunks(std::size_t n, unsigned threads,
                     const std::function<void(std::size_t, std::size_t)>& fn);

/// Effective worker count used by parallel_chunks.
[[nodiscard]] unsigned kernel_threads(unsigned requested) noexcept;

/// Fixed-size persistent worker pool. Tasks run in submission order (FIFO
/// dispatch) but complete in any order; `wait_idle` is the join point.
/// Exceptions thrown by tasks are captured and rethrown from `wait_idle`
/// (first one wins; the rest are dropped after running to completion).
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task. Never blocks on task execution.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished, then rethrow the first
  /// captured task exception, if any.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;   // signalled on submit/stop
  std::condition_variable all_done_;     // signalled when the pool drains
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // dequeued but not yet finished
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace amoeba::kernels
