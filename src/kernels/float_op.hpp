// FunctionBench `float` kernel: transcendental floating-point operations
// (sin/cos/sqrt chains), the CPU-bound microservice body.
#pragma once

#include <cstddef>
#include <cstdint>

namespace amoeba::kernels {

struct FloatOpResult {
  double checksum = 0.0;   ///< data-dependent sum (defeats dead-code elim)
  double seconds = 0.0;    ///< wall time of the kernel body
};

/// Run `iterations` sin/cos/sqrt rounds, optionally split over `threads`
/// workers. Deterministic checksum for a given (iterations, threads=1).
[[nodiscard]] FloatOpResult run_float_op(std::size_t iterations,
                                         unsigned threads = 1);

}  // namespace amoeba::kernels
