#include "kernels/linpack.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "kernels/thread_pool.hpp"

namespace amoeba::kernels {

bool lu_solve(std::vector<double>& a, std::vector<double>& b, std::size_t n,
              unsigned threads) {
  AMOEBA_EXPECTS(n > 0);
  AMOEBA_EXPECTS(a.size() == n * n && b.size() == n);
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |a[i][k]| for i >= k.
    std::size_t pivot = k;
    double best = std::abs(a[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a[i * n + k]);
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == 0.0) return false;  // singular
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[k * n + j], a[pivot * n + j]);
      }
      std::swap(b[k], b[pivot]);
    }

    const double akk = a[k * n + k];
    // Trailing update, parallel over rows below the pivot.
    const std::size_t rows_below = n - k - 1;
    if (rows_below > 0) {
      parallel_chunks(rows_below, threads, [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          const std::size_t i = k + 1 + r;
          const double factor = a[i * n + k] / akk;
          a[i * n + k] = factor;  // store L in place
          if (factor == 0.0) continue;
          const double* arow_k = &a[k * n];
          double* arow_i = &a[i * n];
          for (std::size_t j = k + 1; j < n; ++j) {
            arow_i[j] -= factor * arow_k[j];
          }
        }
      });
      for (std::size_t i = k + 1; i < n; ++i) {
        b[i] -= a[i * n + k] * b[k];
      }
    }
  }

  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= a[ii * n + j] * b[j];
    b[ii] = sum / a[ii * n + ii];
  }
  return true;
}

LinpackResult run_linpack(std::size_t n, unsigned threads) {
  AMOEBA_EXPECTS(n > 0);
  // Deterministic well-conditioned inputs.
  std::vector<double> a(n * n), a0;
  std::vector<double> b(n, 0.0), b0;
  std::uint64_t s = 0x9E3779B97F4A7C15ULL;
  double norm_a = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      const double v = static_cast<double>(s >> 40) * 0x1.0p-24 - 0.5;
      a[i * n + j] = v;
      row_sum += std::abs(v);
    }
    a[i * n + i] += row_sum;  // diagonal dominance: never singular
    norm_a = std::max(norm_a, 2.0 * row_sum);
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    b[i] = static_cast<double>(s >> 40) * 0x1.0p-24 - 0.5;
  }
  a0 = a;
  b0 = b;

  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = lu_solve(a, b, n, threads);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  AMOEBA_ASSERT_MSG(ok, "diagonally dominant system cannot be singular");

  LinpackResult out;
  out.seconds = seconds;
  double norm_x = 0.0;
  for (double x : b) norm_x = std::max(norm_x, std::abs(x));
  for (std::size_t i = 0; i < n; ++i) {
    double ax = 0.0;
    for (std::size_t j = 0; j < n; ++j) ax += a0[i * n + j] * b[j];
    out.residual = std::max(out.residual, std::abs(ax - b0[i]));
  }
  const double eps = std::numeric_limits<double>::epsilon();
  out.normalized_residual =
      out.residual / (static_cast<double>(n) * norm_a * norm_x * eps);
  const double flops = 2.0 / 3.0 * static_cast<double>(n) *
                       static_cast<double>(n) * static_cast<double>(n);
  out.gflops = seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
  return out;
}

}  // namespace amoeba::kernels
