// FunctionBench `cloud_stor` kernel: stream bytes between an uploader and
// a downloader thread over a Unix socket pair — the network-bound
// microservice body (object-storage get/put), runnable without a network.
#pragma once

#include <cstddef>

namespace amoeba::kernels {

struct CloudStorResult {
  double seconds = 0.0;
  double mbps = 0.0;       ///< end-to-end MB/s
  std::size_t bytes = 0;
  bool verified = false;   ///< receiver checksum matched sender
};

/// Transfer `total_bytes` in `chunk_bytes` writes from a sender thread to
/// a receiver thread over socketpair(AF_UNIX, SOCK_STREAM). Throws
/// std::runtime_error on socket failure.
[[nodiscard]] CloudStorResult run_cloud_stor(std::size_t total_bytes,
                                             std::size_t chunk_bytes = 64 * 1024);

}  // namespace amoeba::kernels
