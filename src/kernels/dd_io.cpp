#include "kernels/dd_io.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::kernels {

DdResult run_dd(std::size_t total_bytes, std::size_t block_bytes,
                const std::string& dir) {
  AMOEBA_EXPECTS(total_bytes > 0);
  AMOEBA_EXPECTS(block_bytes > 0);
  namespace fs = std::filesystem;
  const fs::path base = dir.empty() ? fs::temp_directory_path() : fs::path(dir);
  const fs::path path =
      base / ("amoeba_dd_" + std::to_string(::getpid()) + "_" +
              std::to_string(reinterpret_cast<std::uintptr_t>(&total_bytes)) +
              ".bin");

  std::vector<char> block(block_bytes);
  for (std::size_t i = 0; i < block_bytes; ++i) {
    block[i] = static_cast<char>((i * 131) & 0xff);
  }
  std::uint64_t write_sum = 0;

  DdResult out;
  out.bytes = total_bytes;
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) throw std::runtime_error("dd: cannot open " + path.string());
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t written = 0;
    while (written < total_bytes) {
      const std::size_t n = std::min(block_bytes, total_bytes - written);
      f.write(block.data(), static_cast<std::streamsize>(n));
      for (std::size_t i = 0; i < n; ++i) {
        write_sum += static_cast<unsigned char>(block[i]);
      }
      written += n;
    }
    f.flush();
    if (!f) {
      std::error_code ec;
      fs::remove(path, ec);
      throw std::runtime_error("dd: write failed on " + path.string());
    }
    out.write_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("dd: cannot reopen " + path.string());
    std::uint64_t read_sum = 0;
    std::vector<char> buf(block_bytes);
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t remaining = total_bytes;
    while (remaining > 0) {
      const std::size_t n = std::min(block_bytes, remaining);
      f.read(buf.data(), static_cast<std::streamsize>(n));
      if (f.gcount() != static_cast<std::streamsize>(n)) {
        std::error_code ec;
        fs::remove(path, ec);
        throw std::runtime_error("dd: short read on " + path.string());
      }
      for (std::size_t i = 0; i < n; ++i) {
        read_sum += static_cast<unsigned char>(buf[i]);
      }
      remaining -= n;
    }
    out.read_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    out.verified = read_sum == write_sum;
  }
  std::error_code ec;
  fs::remove(path, ec);

  const double mb = static_cast<double>(total_bytes) / 1e6;
  out.write_mbps = out.write_seconds > 0.0 ? mb / out.write_seconds : 0.0;
  out.read_mbps = out.read_seconds > 0.0 ? mb / out.read_seconds : 0.0;
  return out;
}

}  // namespace amoeba::kernels
