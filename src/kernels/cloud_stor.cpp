#include "kernels/cloud_stor.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::kernels {

CloudStorResult run_cloud_stor(std::size_t total_bytes,
                               std::size_t chunk_bytes) {
  AMOEBA_EXPECTS(total_bytes > 0);
  AMOEBA_EXPECTS(chunk_bytes > 0);

  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error("cloud_stor: socketpair failed");
  }

  std::vector<char> chunk(chunk_bytes);
  for (std::size_t i = 0; i < chunk_bytes; ++i) {
    chunk[i] = static_cast<char>((i * 167) & 0xff);
  }

  std::uint64_t sent_sum = 0;
  std::uint64_t recv_sum = 0;
  bool send_ok = true;
  bool recv_ok = true;

  const auto t0 = std::chrono::steady_clock::now();

  std::thread receiver([&] {
    std::vector<char> buf(chunk_bytes);
    std::size_t remaining = total_bytes;
    while (remaining > 0) {
      const std::size_t want = std::min(chunk_bytes, remaining);
      const ssize_t n = ::read(fds[1], buf.data(), want);
      if (n <= 0) {
        recv_ok = false;
        return;
      }
      for (ssize_t i = 0; i < n; ++i) {
        recv_sum += static_cast<unsigned char>(buf[static_cast<std::size_t>(i)]);
      }
      remaining -= static_cast<std::size_t>(n);
    }
  });

  {
    std::size_t remaining = total_bytes;
    while (remaining > 0) {
      const std::size_t n = std::min(chunk_bytes, remaining);
      std::size_t off = 0;
      while (off < n) {
        const ssize_t w = ::write(fds[0], chunk.data() + off, n - off);
        if (w <= 0) {
          send_ok = false;
          break;
        }
        off += static_cast<std::size_t>(w);
      }
      if (!send_ok) break;
      for (std::size_t i = 0; i < n; ++i) {
        sent_sum += static_cast<unsigned char>(chunk[i]);
      }
      remaining -= n;
    }
  }
  receiver.join();
  ::close(fds[0]);
  ::close(fds[1]);

  if (!send_ok || !recv_ok) {
    throw std::runtime_error("cloud_stor: transfer failed");
  }

  CloudStorResult out;
  out.bytes = total_bytes;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.mbps = out.seconds > 0.0
                 ? static_cast<double>(total_bytes) / 1e6 / out.seconds
                 : 0.0;
  out.verified = sent_sum == recv_sum;
  return out;
}

}  // namespace amoeba::kernels
