// FunctionBench `matmul` kernel: dense square matrix product, blocked for
// cache locality and parallelized over row blocks.
#pragma once

#include <cstddef>
#include <vector>

namespace amoeba::kernels {

struct MatmulResult {
  double checksum = 0.0;
  double seconds = 0.0;
  double gflops = 0.0;
};

/// C = A·B for deterministic pseudo-random n×n inputs.
[[nodiscard]] MatmulResult run_matmul(std::size_t n, unsigned threads = 1,
                                      std::size_t block = 64);

/// Exposed for tests: multiply explicit row-major matrices (a: n×n,
/// b: n×n) into the returned n×n product using the same blocked path.
[[nodiscard]] std::vector<double> matmul(const std::vector<double>& a,
                                         const std::vector<double>& b,
                                         std::size_t n, unsigned threads = 1,
                                         std::size_t block = 64);

}  // namespace amoeba::kernels
