// FunctionBench `dd` kernel: sequential block write + read of a scratch
// file, the disk-IO-bound microservice body.
#pragma once

#include <cstddef>
#include <string>

namespace amoeba::kernels {

struct DdResult {
  double write_seconds = 0.0;
  double read_seconds = 0.0;
  double write_mbps = 0.0;  ///< MB/s
  double read_mbps = 0.0;
  std::size_t bytes = 0;
  bool verified = false;  ///< read-back checksum matched
};

/// Write `total_bytes` in `block_bytes` blocks to a scratch file under
/// `dir` (default: the system temp dir), read it back, verify, and remove
/// it. Throws std::runtime_error on IO failure.
[[nodiscard]] DdResult run_dd(std::size_t total_bytes,
                              std::size_t block_bytes = 1 << 20,
                              const std::string& dir = {});

}  // namespace amoeba::kernels
