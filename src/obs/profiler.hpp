// Self-profiling layer: sim-time-bucketed wall-time attribution for the
// simulator itself.
//
// The repository's simulations are deterministic functions of a seed; this
// profiler answers the orthogonal question of where *wall time* goes while
// computing them — engine dispatch vs. fair-share recompute vs. monitor and
// controller ticks vs. pool bookkeeping vs. stats — so speed work (the
// ROADMAP's flow-level fast-forward mode) targets measured cost, not guesses.
//
// Design (DESIGN.md §13):
//   * Scoped domain timers. `AMOEBA_PROF_SCOPE(kFairShare)` opens a frame on
//     the calling thread's accumulator; when no profiler is attached to the
//     thread it is a single null check. Time is attributed by *segment
//     accounting*: every transition (scope push/pop, sim-time bucket change)
//     reads the clock once (TSC on x86-64, steady clock elsewhere; see
//     prof_now_raw) and charges the elapsed segment to the domain on top of
//     the stack. Self time therefore never double-counts
//     nested scopes, and a domain's `total` is the wall time with that
//     domain anywhere on the stack.
//   * Sim-time buckets. The engine calls `engine_dispatch(now)` per event
//     (pure arithmetic — the clock is only read when the bucket index
//     actually changes), so wall-time segments land in the simulation-time
//     bucket they were spent on. Default bucket width: one contention-
//     monitor period (5 s), making "fair-share recompute dominates during
//     the switch storm at t≈900 s" directly visible.
//   * Per-thread accumulators, merged under the annotated common::Mutex.
//     attach_current_thread()/detach_current_thread() bracket a thread's
//     participation (ProfilerAttach is the RAII form); `report()` is
//     coordinator-only, like MetricsRegistry::take_snapshot.
//   * Determinism. The profiler reads simulation time but never schedules
//     events, draws randomness, or feeds wall time back into the simulation,
//     so attaching it leaves engine trace hashes bit-identical (enforced by
//     tests/integration/determinism_test.cpp).
//
// This header is the single place outside src/kernels/ allowed to read the
// wall clock; each read carries the lint escape `// lint: wallclock-ok`.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "common/mutex.hpp"

namespace amoeba::obs {

/// Cost domains the simulator attributes wall time to.
enum class ProfDomain : std::uint8_t {
  kEngine = 0,       ///< event dispatch + heap maintenance (run loop)
  kFairShare,        ///< FairShareResource bank/reallocate/completion
  kMonitor,          ///< contention-monitor periods (probe bookkeeping)
  kController,       ///< deployment-controller ticks + runtime control path
  kServerlessPool,   ///< container pool bookkeeping (start/evict/expire)
  kIaasPool,         ///< IaaS platform bookkeeping (boot/submit/drain)
  kStats,            ///< latency sample / quantile / snapshot updates
  kExport,           ///< obs exporters (including the profiler's own)
  kHarness,          ///< scenario setup/teardown outside the event loop
};

inline constexpr std::size_t kProfDomainCount = 9;

[[nodiscard]] const char* to_string(ProfDomain d) noexcept;

/// Inverse of to_string; kProfDomainCount for unknown names.
[[nodiscard]] std::size_t prof_domain_index(std::string_view name) noexcept;

namespace detail {

/// One thread's accumulator. Owned by the Profiler, mutated only by the
/// thread it is attached to; read by the coordinator in report() after the
/// owning thread detached or quiesced.
struct ProfThreadState {
  static constexpr unsigned kMaxDepth = 32;

  struct Frame {
    std::uint64_t start = 0;  // raw clock units (prof_now_raw)
    ProfDomain domain = ProfDomain::kEngine;
  };
  /// Accumulated time in *raw clock units* — TSC ticks on x86-64,
  /// nanoseconds elsewhere. report() measures the raw-units-per-second
  /// rate against the steady clock over the whole session and converts
  /// once, so the hot path never pays the units conversion.
  struct Accum {
    double self = 0.0;
    double total = 0.0;
    std::uint64_t count = 0;
  };

  std::array<Frame, kMaxDepth> stack;
  unsigned depth = 0;
  std::uint32_t bucket = 0;
  std::uint64_t last_mark = 0;  // raw clock units (prof_now_raw)
  std::uint64_t dropped_scopes = 0;
  double inv_bucket_width = 0.0;  // 1 / bucket_width_s, copied at attach
  /// row(bucket).data(), refreshed whenever `bucket` changes — buckets can
  /// only grow there, so the pointer stays valid between changes and the
  /// hot flush path skips the vector bounds logic.
  double* cur_row = nullptr;
  std::array<Accum, kProfDomainCount> totals{};
  std::vector<std::array<double, kProfDomainCount>> buckets;

  std::array<double, kProfDomainCount>& row(std::uint32_t b) {
    if (buckets.size() <= b) buckets.resize(b + 1, {});
    return buckets[b];
  }

  void set_bucket(std::uint32_t b) {
    bucket = b;
    cur_row = row(b).data();
  }

  /// Charge the wall segment since last_mark to the innermost open
  /// domain (time outside every scope stays unattributed).
  void flush_segment(std::uint64_t now) {
    if (depth > 0) {
      const auto d = static_cast<std::size_t>(stack[depth - 1].domain);
      const auto dt = static_cast<double>(now - last_mark);
      totals[d].self += dt;
      cur_row[d] += dt;
    }
    last_mark = now;
  }

  /// Returns false (and counts a drop) on stack overflow.
  bool push(ProfDomain d, std::uint64_t now) {
    flush_segment(now);
    if (depth == kMaxDepth) {
      ++dropped_scopes;
      return false;
    }
    stack[depth++] = Frame{now, d};
    return true;
  }

  void pop(std::uint64_t now) {
    flush_segment(now);
    const Frame f = stack[--depth];
    const auto d = static_cast<std::size_t>(f.domain);
    ++totals[d].count;
    // `total` is wall time with the domain anywhere on the stack: only the
    // outermost frame of a same-domain nest contributes, so recursive
    // instrumentation (controller tick inside the runtime's control scope)
    // cannot double-count.
    for (unsigned i = 0; i < depth; ++i) {
      if (stack[i].domain == f.domain) return;
    }
    totals[d].total += static_cast<double>(now - f.start);
  }
};

extern thread_local ProfThreadState* t_prof_state;

[[nodiscard]] inline std::uint64_t prof_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // lint: wallclock-ok the profiler attributes host wall time; it never feeds back into sim state
              .time_since_epoch())
          .count());
}

/// Hot-path timestamp in *raw clock units*. On x86-64 this is the TSC
/// (~3x cheaper than the steady clock's vDSO call — two of these run per
/// scope, and hot scopes fire several times per simulated query, so the
/// read dominates the profiler's overhead budget); elsewhere it falls back
/// to steady-clock nanoseconds. Raw units are converted to seconds once in
/// Profiler::report() against a steady-clock baseline, which also absorbs
/// the TSC frequency. Assumes the invariant TSC of every x86-64 CPU this
/// decade; cross-core skew is nanoseconds, far below scope granularity.
[[nodiscard]] inline std::uint64_t prof_now_raw() noexcept {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#else
  return prof_now_ns();
#endif
}

}  // namespace detail

/// Merged, exportable view of one profiling session (see report()).
struct ProfileReport {
  double bucket_width_s = 0.0;
  double wall_s = 0.0;  ///< profiler construction -> report(), wall seconds
  std::uint32_t threads = 0;
  std::uint64_t dropped_scopes = 0;
  std::vector<std::string> domains;     ///< column names, fixed order
  std::vector<double> self_s;           ///< per domain, aligned with domains
  std::vector<double> total_s;
  std::vector<std::uint64_t> count;
  struct Bucket {
    std::uint32_t index = 0;
    double sim_t0_s = 0.0;
    std::vector<double> self_s;  ///< aligned with domains
  };
  std::vector<Bucket> buckets;  ///< sparse: all-zero rows omitted

  /// Σ self across domains — the wall time the profiler can attribute.
  [[nodiscard]] double attributed_s() const;
};

class Profiler {
 public:
  struct Options {
    /// Sim-time bucket width. Default: one monitor period (5 s), so bucket
    /// rows line up with control-loop ticks.
    double bucket_width_s = 5.0;
  };

  Profiler() : Profiler(Options{}) {}
  explicit Profiler(Options opt);
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Open a fresh accumulator for the calling thread and make it the
  /// target of AMOEBA_PROF_SCOPE / engine hooks on this thread.
  void attach_current_thread() AMOEBA_EXCLUDES(mutex_);

  /// Stop profiling on the calling thread. The accumulator is retained for
  /// report(). Requires every scope opened on this thread to be closed.
  void detach_current_thread() AMOEBA_EXCLUDES(mutex_);

  /// Engine hooks (sim::Engine calls these when a profiler is attached to
  /// it). They operate on the *calling thread's* accumulator, so the
  /// engine's profiler and the thread's attached profiler should be the
  /// same object. run_begin/run_end bracket the event loop as the kEngine
  /// domain; dispatch advances the sim-time bucket — pure arithmetic, the
  /// clock is read only when the bucket index changes.
  void engine_run_begin() noexcept {
    if (auto* s = detail::t_prof_state) {
      s->push(ProfDomain::kEngine, detail::prof_now_raw());
    }
  }
  void engine_run_end() noexcept {
    if (auto* s = detail::t_prof_state) {
      if (s->depth > 0) s->pop(detail::prof_now_raw());
    }
  }
  void engine_dispatch(double sim_now) noexcept {
    if (auto* s = detail::t_prof_state) {
      const auto b = static_cast<std::uint32_t>(sim_now * s->inv_bucket_width);
      if (b != s->bucket) {
        // Flush charges the segment to the *old* bucket, then the row
        // pointer moves to the new one.
        s->flush_segment(detail::prof_now_raw());
        s->set_bucket(b);
      }
    }
  }

  [[nodiscard]] double bucket_width_s() const noexcept {
    return opt_.bucket_width_s;
  }

  /// Merge every thread accumulator into one report. Coordinator-only: no
  /// attached thread may be inside a scope while this runs (the calling
  /// thread may stay attached between scopes).
  [[nodiscard]] ProfileReport report() const AMOEBA_EXCLUDES(mutex_);

 private:
  Options opt_;
  std::uint64_t epoch_ns_;   ///< steady clock at construction (wall_s base)
  std::uint64_t epoch_raw_;  ///< prof_now_raw at construction (units base)
  mutable common::Mutex mutex_;
  std::vector<std::unique_ptr<detail::ProfThreadState>> states_
      AMOEBA_GUARDED_BY(mutex_);
};

/// RAII attach/detach; null profiler = disabled (no-op).
class ProfilerAttach {
 public:
  explicit ProfilerAttach(Profiler* p) : prof_(p) {
    if (prof_ != nullptr) prof_->attach_current_thread();
  }
  ~ProfilerAttach() {
    if (prof_ != nullptr) prof_->detach_current_thread();
  }
  ProfilerAttach(const ProfilerAttach&) = delete;
  ProfilerAttach& operator=(const ProfilerAttach&) = delete;

 private:
  Profiler* prof_;
};

/// Scoped domain timer; a single null check when no profiler is attached
/// to the current thread.
class ProfScope {
 public:
  explicit ProfScope(ProfDomain d) noexcept {
    detail::ProfThreadState* s = detail::t_prof_state;
    if (s == nullptr) return;
    // Same-domain nest (reallocate() inside on_completion_event(), pool
    // helpers calling each other): segment accounting would charge the same
    // domain either way and only the outermost frame accrues total, so the
    // inner frame is pure overhead — skip it without reading the clock.
    if (s->depth > 0 && s->stack[s->depth - 1].domain == d) return;
    if (s->push(d, detail::prof_now_raw())) state_ = s;
  }
  ~ProfScope() {
    if (state_ != nullptr) state_->pop(detail::prof_now_raw());
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  detail::ProfThreadState* state_ = nullptr;
};

#define AMOEBA_PROF_CONCAT_(a, b) a##b
#define AMOEBA_PROF_CONCAT(a, b) AMOEBA_PROF_CONCAT_(a, b)
/// Time the enclosing scope under `domain` (a ProfDomain enumerator name).
#define AMOEBA_PROF_SCOPE(domain)                                     \
  ::amoeba::obs::ProfScope AMOEBA_PROF_CONCAT(amoeba_prof_scope_,     \
                                              __LINE__) {             \
    ::amoeba::obs::ProfDomain::domain                                 \
  }

/// JSONL profile stream: one `profile_meta` line, one `profile_total`
/// line, then one `profile_bucket` line per non-empty sim-time bucket.
/// Every line parses with obs::parse_json.
void write_profile_jsonl(const ProfileReport& report, std::ostream& out);

/// Inverse of write_profile_jsonl. Returns false on any malformed line.
bool parse_profile_jsonl(std::istream& in, ProfileReport& out);

/// Chrome trace_event counter stream ("prof:<domain>" counters, one sample
/// per bucket at its sim-time start) for ui.perfetto.dev.
void write_profile_chrome_trace(const ProfileReport& report,
                                std::ostream& out);

/// Human-readable self/total per-domain table, sorted by self time, with
/// an attributed-vs-wall coverage footer.
void write_profile_table(const ProfileReport& report, std::ostream& out);

}  // namespace amoeba::obs
