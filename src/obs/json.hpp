// Minimal JSON support for the observability exporters.
//
// The writer side is a pair of formatting helpers (string escaping and
// round-trippable number printing); the reader side is a small
// recursive-descent parser over the full JSON grammar. The parser exists so
// the JSONL metrics exporter can be round-trip tested and so downstream
// tooling (tests, analysis scripts compiled against the library) can load
// exported artifacts without a third-party dependency.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::obs {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Format a finite double so that parsing the result with strtod recovers
/// the exact same bits (shortest form up to max_digits10). Integers within
/// 2^53 print without an exponent or trailing ".0".
[[nodiscard]] std::string json_number(double x);

/// A parsed JSON document. Object member order is preserved.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Object lookup with a contract that the member exists.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
};

/// Parse one JSON document. Returns nullopt on any syntax error or on
/// trailing non-whitespace input.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace amoeba::obs
