#include "obs/trace.hpp"

#include <utility>

namespace amoeba::obs {

std::uint32_t Tracer::track(const std::string& name) {
  auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(track_names_.size());
  track_ids_.emplace(name, id);
  track_names_.push_back(name);
  open_depth_.push_back(0);
  return id;
}

void Tracer::begin(std::uint32_t track, std::string name, double ts_s,
                   std::string category, TraceArgs args) {
  AMOEBA_EXPECTS(track < track_names_.size());
  const std::size_t before = events_.size();
  push({TracePhase::kBegin, ts_s, track, 0, std::move(name),
        std::move(category), std::move(args)});
  if (events_.size() > before) {
    ++open_depth_[track];
    ++open_spans_;
  }
}

void Tracer::end(std::uint32_t track, std::string name, double ts_s,
                 TraceArgs args) {
  AMOEBA_EXPECTS(track < track_names_.size());
  if (open_depth_[track] == 0) {
    // Either the matching begin was dropped at the cap or the caller is
    // unbalanced; drop the end too so exported traces stay well formed.
    ++dropped_;
    return;
  }
  --open_depth_[track];
  --open_spans_;
  push({TracePhase::kEnd, ts_s, track, 0, std::move(name), {},
        std::move(args)},
       /*force=*/true);
}

void Tracer::instant(std::uint32_t track, std::string name, double ts_s,
                     std::string category, TraceArgs args) {
  AMOEBA_EXPECTS(track < track_names_.size());
  push({TracePhase::kInstant, ts_s, track, 0, std::move(name),
        std::move(category), std::move(args)});
}

void Tracer::counter(std::uint32_t track, std::string name, double ts_s,
                     double value) {
  AMOEBA_EXPECTS(track < track_names_.size());
  TraceArgs args;
  args.push_back(TraceArg::of("value", value));
  push({TracePhase::kCounter, ts_s, track, 0, std::move(name), {},
        std::move(args)});
}

void Tracer::async_begin(std::uint32_t track, std::string name,
                         std::uint64_t async_id, double ts_s,
                         std::string category, TraceArgs args) {
  AMOEBA_EXPECTS(track < track_names_.size());
  push({TracePhase::kAsyncBegin, ts_s, track, async_id, std::move(name),
        std::move(category), std::move(args)});
}

void Tracer::async_end(std::uint32_t track, std::string name,
                       std::uint64_t async_id, double ts_s,
                       std::string category, TraceArgs args) {
  AMOEBA_EXPECTS(track < track_names_.size());
  push({TracePhase::kAsyncEnd, ts_s, track, async_id, std::move(name),
        std::move(category), std::move(args)});
}

void Tracer::push(TraceEvent ev, bool force) {
  if (!force && events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

}  // namespace amoeba::obs
