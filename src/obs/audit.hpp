// Structured decision audit log.
//
// Every monitor tick, the runtime appends one DecisionRecord per managed
// service capturing exactly what the controller saw (load, pressures,
// surfaces/features, PCA weights) and what it concluded (μ, the Eq. 5
// fixed-point trajectory, λ_max, predicted tail latency, vote state, the
// decision, and the Eq. 7 prewarm target). The log is append-only and kept
// entirely in memory; the exporters serialize it to JSONL on demand.
//
// This header intentionally depends on nothing from src/core/ — platform and
// decision are carried as strings so the obs library stays below core in the
// link order.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace amoeba::obs {

/// Number of contended resource dimensions (mirrors
/// core::WeightEstimator::kNumResources).
inline constexpr std::size_t kAuditResources = 3;

/// Inputs and conclusions of one controller evaluation for one service.
struct DecisionRecord {
  double time_s = 0.0;
  std::string service;
  std::string platform;  ///< mode before the decision applied
  std::string decision;  ///< stay / switch_to_serverless / ... / transitioning

  // Measured inputs (V_u, P).
  double load_qps = 0.0;
  double forecast_load_qps = 0.0;
  std::array<double, kAuditResources> total_pressures{};
  std::array<double, kAuditResources> external_pressures{};
  std::array<double, kAuditResources> features{};

  // Model state (Eq. 6 weights, service rate, Eq. 1-5 discriminant).
  std::optional<std::array<double, kAuditResources>> weights;
  double mu = 0.0;                  ///< estimated service rate (1/s)
  double predicted_service_s = 0.0; ///< 1/μ when μ > 0
  std::vector<double> lambda_iterates;  ///< Eq. 5 fixed-point trajectory
  std::optional<double> lambda_max;     ///< discriminant λ_max (Eq. 1-5)
  std::optional<double> predicted_p95_s;
  std::optional<double> observed_p95_s;

  // Capacity and hysteresis state.
  double qos_target_s = 0.0;
  /// Call-graph stage index of the service's runtime (-1 = standalone).
  int stage = -1;
  int n_containers = 0;
  int prewarm_target = 0;  ///< Eq. 7 count for the current load
  int votes_to_serverless = 0;
  int votes_to_iaas = 0;
};

/// Append-only in-memory decision log.
class AuditLog {
 public:
  void append(DecisionRecord record) {
    records_.push_back(std::move(record));
  }

  [[nodiscard]] const std::vector<DecisionRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

 private:
  std::vector<DecisionRecord> records_;
};

}  // namespace amoeba::obs
