// Sim-time span tracer.
//
// Records begin/end spans, instants, counter samples and async (overlapping)
// spans against named tracks, timestamped exclusively with simulation time —
// never wall clock — so two runs of the same seed produce byte-identical
// traces. Recording is pure bookkeeping: the tracer never schedules events,
// draws randomness, or otherwise touches the simulation, which is what lets
// the determinism checker assert that enabling tracing leaves the engine's
// event-trace hash unchanged.
//
// The event buffer is capped; once full, new spans/instants are counted as
// dropped rather than stored. End events for spans that already began are
// always admitted so every recorded 'B' keeps its matching 'E'.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::obs {

/// One argument attached to a trace event (numeric or string).
struct TraceArg {
  std::string key;
  std::string str;    ///< used when !numeric
  double num = 0.0;   ///< used when numeric
  bool numeric = false;

  static TraceArg of(std::string key, double value) {
    return {std::move(key), {}, value, true};
  }
  static TraceArg of(std::string key, std::string value) {
    return {std::move(key), std::move(value), 0.0, false};
  }
};

using TraceArgs = std::vector<TraceArg>;

/// Chrome trace_event phases used by this tracer.
enum class TracePhase : char {
  kBegin = 'B',       ///< synchronous span open (nested per track)
  kEnd = 'E',         ///< synchronous span close
  kInstant = 'i',     ///< point event
  kCounter = 'C',     ///< counter sample
  kAsyncBegin = 'b',  ///< overlapping span open (matched by id)
  kAsyncEnd = 'e',    ///< overlapping span close
};

struct TraceEvent {
  TracePhase phase = TracePhase::kInstant;
  double ts_s = 0.0;  ///< simulation time, seconds
  std::uint32_t track = 0;
  std::uint64_t async_id = 0;  ///< for kAsyncBegin/kAsyncEnd
  std::string name;
  std::string category;
  TraceArgs args;
};

class Tracer {
 public:
  explicit Tracer(std::size_t max_events = std::size_t{1} << 21)
      : max_events_(max_events) {}

  /// Intern a track (Perfetto "thread") by name; idempotent.
  std::uint32_t track(const std::string& name);

  void begin(std::uint32_t track, std::string name, double ts_s,
             std::string category = {}, TraceArgs args = {});
  void end(std::uint32_t track, std::string name, double ts_s,
           TraceArgs args = {});
  void instant(std::uint32_t track, std::string name, double ts_s,
               std::string category = {}, TraceArgs args = {});
  void counter(std::uint32_t track, std::string name, double ts_s,
               double value);
  void async_begin(std::uint32_t track, std::string name,
                   std::uint64_t async_id, double ts_s,
                   std::string category = {}, TraceArgs args = {});
  void async_end(std::uint32_t track, std::string name,
                 std::uint64_t async_id, double ts_s,
                 std::string category = {}, TraceArgs args = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  /// Track names indexed by track id.
  [[nodiscard]] const std::vector<std::string>& track_names() const noexcept {
    return track_names_;
  }
  /// Events rejected because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Currently open synchronous spans across all tracks.
  [[nodiscard]] std::uint64_t open_spans() const noexcept {
    return open_spans_;
  }

 private:
  /// Admit an event unless the cap is hit (`force` bypasses the cap so that
  /// matching end events always land).
  void push(TraceEvent ev, bool force = false);

  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::vector<std::string> track_names_;
  std::map<std::string, std::uint32_t> track_ids_;
  std::vector<std::uint32_t> open_depth_;  ///< per track, for E admission
  std::uint64_t open_spans_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace amoeba::obs
