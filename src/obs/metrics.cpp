#include "obs/metrics.hpp"

#include <algorithm>

namespace amoeba::obs {

std::string metric_key(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) return name;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricLabel& a, const MetricLabel& b) {
              return a.key < b.key;
            });
  std::string key = name + "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += sorted[i].key + "=" + sorted[i].value;
  }
  key += "}";
  return key;
}

void HistogramMetric::observe(double x) {
  hist_.add(x);
  if (count_ == 0 || x < min_) min_ = x;
  if (count_ == 0 || x > max_) max_ = x;
  sum_ += x;
  ++count_;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const MetricLabels& labels) {
  common::MutexLock lock(mutex_);
  return counters_[metric_key(name, labels)];
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const MetricLabels& labels) {
  common::MutexLock lock(mutex_);
  return gauges_[metric_key(name, labels)];
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            const MetricLabels& labels) {
  common::MutexLock lock(mutex_);
  return histograms_[metric_key(name, labels)];
}

std::size_t MetricsRegistry::size() const {
  common::MutexLock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

const MetricsSnapshot& MetricsRegistry::take_snapshot(double time_s) {
  MetricsSnapshot snap;
  snap.time_s = time_s;
  {
    common::MutexLock lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& [key, c] : counters_) {
      snap.counters.emplace_back(key, c.value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [key, g] : gauges_) {
      snap.gauges.emplace_back(key, g.value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [key, h] : histograms_) {
      HistogramSnapshot hs;
      hs.count = h.count();
      hs.sum = h.sum();
      if (h.count() > 0) {
        hs.min = h.min();
        hs.max = h.max();
        hs.p50 = h.quantile(0.50);
        hs.p95 = h.quantile(0.95);
        hs.p99 = h.quantile(0.99);
      }
      snap.histograms.emplace_back(key, hs);
    }
  }
  snapshots_.push_back(std::move(snap));
  return snapshots_.back();
}

}  // namespace amoeba::obs
