// Exporters for the observability layer.
//
// Three output formats, all written to caller-supplied std::ostream&:
//   - Chrome/Perfetto trace_event JSON ({"traceEvents": [...]}) — load at
//     https://ui.perfetto.dev or chrome://tracing. Timestamps are emitted in
//     microseconds of simulation time.
//   - JSONL metric snapshots — one JSON object per line, one line per
//     snapshot; numbers use round-trippable formatting so that
//     parse_metrics_jsonl() recovers bit-identical values.
//   - Human-readable end-of-run summary table.
//
// `ExportPaths` + `parse_export_flags` + `write_exports` give examples and
// benches a shared --trace-out/--metrics-out/--audit-out/--summary-out CLI.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/observer.hpp"

namespace amoeba::obs {

/// Chrome trace_event JSON for ui.perfetto.dev / chrome://tracing.
void write_chrome_trace(const Tracer& tracer, std::ostream& out);

/// One JSON object per snapshot, one snapshot per line.
void write_metrics_jsonl(const MetricsRegistry& metrics, std::ostream& out);

/// Inverse of write_metrics_jsonl. Returns false (and stops) on a malformed
/// line; snapshots parsed so far are kept in `out`.
bool parse_metrics_jsonl(std::istream& in, std::vector<MetricsSnapshot>& out);

/// One JSON object per DecisionRecord, one record per line.
void write_audit_jsonl(const AuditLog& audit, std::ostream& out);

/// Human-readable end-of-run roll-up: decision counts per service, final
/// gauge/counter values, histogram quantiles, trace volume.
void write_summary(const Observer& obs, std::ostream& out);

/// Output destinations selected on the command line; empty string = off.
struct ExportPaths {
  std::string trace;
  std::string metrics;
  std::string audit;
  std::string summary;
  std::string profile;  ///< self-profile (obs::Profiler) JSONL destination

  [[nodiscard]] bool any() const {
    return !trace.empty() || !metrics.empty() || !audit.empty() ||
           !summary.empty();
  }
};

/// Scan argv for --trace-out F, --metrics-out F, --audit-out F,
/// --summary-out F, --profile-out F (space-separated). Unrelated arguments
/// are ignored.
[[nodiscard]] ExportPaths parse_export_flags(int argc, char** argv);

/// Insert `suffix` before the path's extension ("t.json", "_a" -> "t_a.json").
[[nodiscard]] std::string with_suffix(const std::string& path,
                                      const std::string& suffix);

/// Write every selected export, logging one line per file to `diagnostics`.
/// `suffix` distinguishes multiple runs sharing one flag set.
void write_exports(const Observer& obs, const ExportPaths& paths,
                   std::ostream& diagnostics, const std::string& suffix = {});

class Profiler;

/// Write the self-profile report behind ExportPaths::profile: the JSONL
/// stream to `path`, Chrome counter events to with_suffix(path, "_trace"),
/// and the per-domain text table to `diagnostics`.
void write_profile_exports(const Profiler& profiler, const std::string& path,
                           std::ostream& diagnostics,
                           const std::string& suffix = {});

}  // namespace amoeba::obs
