#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace amoeba::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double x) {
  AMOEBA_EXPECTS_MSG(std::isfinite(x), "JSON cannot represent NaN/Inf");
  // Integers inside the exactly-representable range print compactly.
  if (x == std::floor(x) && std::abs(x) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", x);
    return buf;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, x);
    if (std::strtod(buf, nullptr) == x) break;
  }
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  AMOEBA_EXPECTS_MSG(v != nullptr,
                     "missing JSON object member: " + std::string(key));
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (eof()) return false;
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      }
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return consume_literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // UTF-8 encode the basic-plane code point (surrogate pairs are
          // not needed for this repository's exporters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  return Parser(text).run();
}

}  // namespace amoeba::obs
