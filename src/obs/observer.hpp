// Observability facade handed to the runtime and platforms.
//
// A default-constructed Observer is fully disabled: every instrumentation
// site guards with `if (obs && obs->trace_on())` etc., so a null pointer or
// a disabled observer costs one branch per site and allocates nothing
// (null-sink fast path). Constructing with an ObsConfig enables the three
// components — tracer, metrics registry, decision audit log — individually.
//
// Determinism contract: the observer only ever appends to in-memory buffers.
// It must never schedule simulation events or draw randomness, so enabling
// it cannot change the engine's event-trace hash.
#pragma once

#include <cstddef>

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace amoeba::obs {

struct ObsConfig {
  bool trace = true;
  bool metrics = true;
  bool audit = true;
  std::size_t max_trace_events = std::size_t{1} << 21;
};

class Observer {
 public:
  /// Disabled observer (null sink).
  Observer() : tracer_(0) {}

  explicit Observer(const ObsConfig& cfg)
      : trace_on_(cfg.trace),
        metrics_on_(cfg.metrics),
        audit_on_(cfg.audit),
        tracer_(cfg.max_trace_events) {}

  [[nodiscard]] bool trace_on() const noexcept { return trace_on_; }
  [[nodiscard]] bool metrics_on() const noexcept { return metrics_on_; }
  [[nodiscard]] bool audit_on() const noexcept { return audit_on_; }
  [[nodiscard]] bool enabled() const noexcept {
    return trace_on_ || metrics_on_ || audit_on_;
  }

  [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const noexcept { return tracer_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] AuditLog& audit() noexcept { return audit_; }
  [[nodiscard]] const AuditLog& audit() const noexcept { return audit_; }

 private:
  bool trace_on_ = false;
  bool metrics_on_ = false;
  bool audit_on_ = false;
  Tracer tracer_;
  MetricsRegistry metrics_;
  AuditLog audit_;
};

}  // namespace amoeba::obs
