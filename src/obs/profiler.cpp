#include "obs/profiler.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace amoeba::obs {

namespace detail {
thread_local ProfThreadState* t_prof_state = nullptr;
}  // namespace detail

namespace {
// Which profiler the current thread is attached to; pairs with
// detail::t_prof_state so detach can check ownership.
thread_local const Profiler* t_prof_owner = nullptr;

constexpr const char* kDomainNames[kProfDomainCount] = {
    "engine",     "fair_share",      "monitor",
    "controller", "serverless_pool", "iaas_pool",
    "stats",      "export",          "harness",
};
}  // namespace

const char* to_string(ProfDomain d) noexcept {
  const auto i = static_cast<std::size_t>(d);
  return i < kProfDomainCount ? kDomainNames[i] : "?";
}

std::size_t prof_domain_index(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kProfDomainCount; ++i) {
    if (name == kDomainNames[i]) return i;
  }
  return kProfDomainCount;
}

double ProfileReport::attributed_s() const {
  double sum = 0.0;
  for (double v : self_s) sum += v;
  return sum;
}

Profiler::Profiler(Options opt)
    : opt_(opt),
      epoch_ns_(detail::prof_now_ns()),
      epoch_raw_(detail::prof_now_raw()) {
  AMOEBA_EXPECTS(opt_.bucket_width_s > 0.0);
}

void Profiler::attach_current_thread() {
  AMOEBA_EXPECTS_MSG(detail::t_prof_state == nullptr,
                     "thread already attached to a profiler");
  auto state = std::make_unique<detail::ProfThreadState>();
  state->inv_bucket_width = 1.0 / opt_.bucket_width_s;
  state->set_bucket(0);
  state->last_mark = detail::prof_now_raw();
  detail::ProfThreadState* raw = state.get();
  {
    common::MutexLock lock(mutex_);
    states_.push_back(std::move(state));
  }
  detail::t_prof_state = raw;
  t_prof_owner = this;
  AMOEBA_ENSURES(detail::t_prof_state != nullptr);
}

void Profiler::detach_current_thread() {
  AMOEBA_EXPECTS_MSG(t_prof_owner == this,
                     "thread is not attached to this profiler");
  AMOEBA_EXPECTS_MSG(detail::t_prof_state->depth == 0,
                     "detach with profiling scopes still open");
  detail::t_prof_state = nullptr;
  t_prof_owner = nullptr;
}

ProfileReport Profiler::report() const {
  AMOEBA_EXPECTS_MSG(
      detail::t_prof_state == nullptr || detail::t_prof_state->depth == 0,
      "report() from inside a profiling scope");
  ProfileReport r;
  r.bucket_width_s = opt_.bucket_width_s;
  r.wall_s = static_cast<double>(detail::prof_now_ns() - epoch_ns_) * 1e-9;
  // Accumulators hold raw clock units (TSC ticks on x86-64); measure the
  // units-per-second rate over the session against the steady clock and
  // convert once here. On the steady-clock fallback this computes ~1e-9.
  const auto raw_elapsed =
      static_cast<double>(detail::prof_now_raw() - epoch_raw_);
  const double secs_per_raw = raw_elapsed > 0.0 ? r.wall_s / raw_elapsed : 0.0;
  r.domains.assign(kDomainNames, kDomainNames + kProfDomainCount);
  r.self_s.assign(kProfDomainCount, 0.0);
  r.total_s.assign(kProfDomainCount, 0.0);
  r.count.assign(kProfDomainCount, 0);

  std::vector<std::array<double, kProfDomainCount>> dense;
  {
    common::MutexLock lock(mutex_);
    r.threads = static_cast<std::uint32_t>(states_.size());
    for (const auto& s : states_) {
      r.dropped_scopes += s->dropped_scopes;
      for (std::size_t d = 0; d < kProfDomainCount; ++d) {
        r.self_s[d] += s->totals[d].self * secs_per_raw;
        r.total_s[d] += s->totals[d].total * secs_per_raw;
        r.count[d] += s->totals[d].count;
      }
      if (dense.size() < s->buckets.size()) {
        dense.resize(s->buckets.size(), {});
      }
      for (std::size_t b = 0; b < s->buckets.size(); ++b) {
        for (std::size_t d = 0; d < kProfDomainCount; ++d) {
          dense[b][d] += s->buckets[b][d];
        }
      }
    }
  }
  for (std::size_t b = 0; b < dense.size(); ++b) {
    bool any = false;
    for (double v : dense[b]) any = any || v != 0.0;
    if (!any) continue;
    ProfileReport::Bucket row;
    row.index = static_cast<std::uint32_t>(b);
    row.sim_t0_s = static_cast<double>(b) * opt_.bucket_width_s;
    row.self_s.resize(kProfDomainCount);
    for (std::size_t d = 0; d < kProfDomainCount; ++d) {
      row.self_s[d] = dense[b][d] * secs_per_raw;
    }
    r.buckets.push_back(std::move(row));
  }
  return r;
}

namespace {

void append_number_array(std::string& out, const std::vector<double>& xs) {
  out += '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += json_number(xs[i]);
  }
  out += ']';
}

void append_count_array(std::string& out,
                        const std::vector<std::uint64_t>& xs) {
  out += '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += json_number(static_cast<double>(xs[i]));
  }
  out += ']';
}

bool read_number_array(const JsonValue& v, std::vector<double>& out) {
  if (!v.is_array()) return false;
  out.clear();
  out.reserve(v.array.size());
  for (const auto& x : v.array) {
    if (!x.is_number()) return false;
    out.push_back(x.number);
  }
  return true;
}

}  // namespace

void write_profile_jsonl(const ProfileReport& report, std::ostream& out) {
  AMOEBA_PROF_SCOPE(kExport);
  std::string line;
  line += R"({"type":"profile_meta","version":1,"bucket_width_s":)";
  line += json_number(report.bucket_width_s);
  line += R"(,"wall_s":)";
  line += json_number(report.wall_s);
  line += R"(,"threads":)";
  line += json_number(static_cast<double>(report.threads));
  line += R"(,"dropped_scopes":)";
  line += json_number(static_cast<double>(report.dropped_scopes));
  line += R"(,"domains":[)";
  for (std::size_t i = 0; i < report.domains.size(); ++i) {
    if (i > 0) line += ',';
    line += '"';
    line += json_escape(report.domains[i]);
    line += '"';
  }
  line += "]}\n";
  out << line;

  line.clear();
  line += R"({"type":"profile_total","self_s":)";
  append_number_array(line, report.self_s);
  line += R"(,"total_s":)";
  append_number_array(line, report.total_s);
  line += R"(,"count":)";
  append_count_array(line, report.count);
  line += "}\n";
  out << line;

  for (const auto& b : report.buckets) {
    line.clear();
    line += R"({"type":"profile_bucket","i":)";
    line += json_number(static_cast<double>(b.index));
    line += R"(,"sim_t0_s":)";
    line += json_number(b.sim_t0_s);
    line += R"(,"self_s":)";
    append_number_array(line, b.self_s);
    line += "}\n";
    out << line;
  }
}

bool parse_profile_jsonl(std::istream& in, ProfileReport& out) {
  out = ProfileReport{};
  bool saw_meta = false;
  bool saw_total = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto doc = parse_json(line);
    if (!doc || !doc->is_object()) return false;
    const JsonValue* type = doc->find("type");
    if (type == nullptr || !type->is_string()) return false;
    if (type->string == "profile_meta") {
      const JsonValue* width = doc->find("bucket_width_s");
      const JsonValue* wall = doc->find("wall_s");
      const JsonValue* threads = doc->find("threads");
      const JsonValue* dropped = doc->find("dropped_scopes");
      const JsonValue* domains = doc->find("domains");
      if (width == nullptr || !width->is_number() || wall == nullptr ||
          !wall->is_number() || threads == nullptr || !threads->is_number() ||
          dropped == nullptr || !dropped->is_number() || domains == nullptr ||
          !domains->is_array()) {
        return false;
      }
      out.bucket_width_s = width->number;
      out.wall_s = wall->number;
      out.threads = static_cast<std::uint32_t>(threads->number);
      out.dropped_scopes = static_cast<std::uint64_t>(dropped->number);
      out.domains.clear();
      for (const auto& d : domains->array) {
        if (!d.is_string()) return false;
        out.domains.push_back(d.string);
      }
      saw_meta = true;
    } else if (type->string == "profile_total") {
      const JsonValue* self = doc->find("self_s");
      const JsonValue* total = doc->find("total_s");
      const JsonValue* count = doc->find("count");
      if (self == nullptr || total == nullptr || count == nullptr ||
          !read_number_array(*self, out.self_s) ||
          !read_number_array(*total, out.total_s) || !count->is_array()) {
        return false;
      }
      out.count.clear();
      for (const auto& c : count->array) {
        if (!c.is_number()) return false;
        out.count.push_back(static_cast<std::uint64_t>(c.number));
      }
      saw_total = true;
    } else if (type->string == "profile_bucket") {
      const JsonValue* index = doc->find("i");
      const JsonValue* t0 = doc->find("sim_t0_s");
      const JsonValue* self = doc->find("self_s");
      ProfileReport::Bucket b;
      if (index == nullptr || !index->is_number() || t0 == nullptr ||
          !t0->is_number() || self == nullptr ||
          !read_number_array(*self, b.self_s)) {
        return false;
      }
      b.index = static_cast<std::uint32_t>(index->number);
      b.sim_t0_s = t0->number;
      out.buckets.push_back(std::move(b));
    } else {
      return false;
    }
  }
  return saw_meta && saw_total;
}

void write_profile_chrome_trace(const ProfileReport& report,
                                std::ostream& out) {
  AMOEBA_PROF_SCOPE(kExport);
  out << "[\n";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out << ",\n";
    first = false;
    out << "  " << event;
  };
  emit(R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"
       R"("args":{"name":"amoeba self-profile"}})");
  for (const auto& b : report.buckets) {
    // Counter samples at the bucket's sim-time start; values in
    // milliseconds so Perfetto's counter tracks read naturally.
    const auto ts =
        static_cast<long long>(b.sim_t0_s * 1e6);  // sim-us timestamps
    for (std::size_t d = 0; d < b.self_s.size() && d < report.domains.size();
         ++d) {
      std::string e = R"({"name":"prof:)";
      e += json_escape(report.domains[d]);
      e += R"(","ph":"C","ts":)";
      e += std::to_string(ts);
      e += R"(,"pid":1,"tid":0,"args":{"self_ms":)";
      e += json_number(b.self_s[d] * 1e3);
      e += "}}";
      emit(e);
    }
  }
  out << "\n]\n";
}

void write_profile_table(const ProfileReport& report, std::ostream& out) {
  AMOEBA_PROF_SCOPE(kExport);
  std::vector<std::size_t> order(report.domains.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (report.self_s[a] != report.self_s[b]) {
      return report.self_s[a] > report.self_s[b];
    }
    return a < b;
  });
  const double attributed = report.attributed_s();
  const double wall = report.wall_s;

  out << "self-profile (" << report.threads << " thread"
      << (report.threads == 1 ? "" : "s") << ", bucket "
      << report.bucket_width_s << " sim-s";
  if (report.dropped_scopes > 0) {
    out << ", " << report.dropped_scopes << " dropped scopes";
  }
  out << ")\n";
  out << std::left << std::setw(17) << "  domain" << std::right
      << std::setw(12) << "self_s" << std::setw(8) << "self%" << std::setw(12)
      << "total_s" << std::setw(12) << "count" << "\n";
  const std::ios::fmtflags flags = out.flags();
  out << std::fixed;
  for (std::size_t i : order) {
    if (report.count[i] == 0 && report.self_s[i] == 0.0) continue;
    const double pct = wall > 0.0 ? 100.0 * report.self_s[i] / wall : 0.0;
    out << "  " << std::left << std::setw(15) << report.domains[i]
        << std::right << std::setprecision(4) << std::setw(12)
        << report.self_s[i] << std::setprecision(1) << std::setw(7) << pct
        << "%" << std::setprecision(4) << std::setw(12) << report.total_s[i]
        << std::setw(12) << report.count[i] << "\n";
  }
  out << std::setprecision(4) << "  attributed " << attributed << " s of "
      << wall << " s wall";
  if (wall > 0.0) {
    out << " (" << std::setprecision(1) << 100.0 * attributed / wall << "%)";
  }
  out << "\n";
  out.flags(flags);
}

}  // namespace amoeba::obs
