#include "obs/exporters.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/assert.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"

namespace amoeba::obs {

namespace {

std::string json_quote(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

void write_args(const TraceArgs& args, std::ostream& out) {
  out << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out << ",";
    out << json_quote(args[i].key) << ":";
    if (args[i].numeric) {
      out << json_number(args[i].num);
    } else {
      out << json_quote(args[i].str);
    }
  }
  out << "}";
}

bool is_async(TracePhase ph) {
  return ph == TracePhase::kAsyncBegin || ph == TracePhase::kAsyncEnd;
}

}  // namespace

void write_chrome_trace(const Tracer& tracer, std::ostream& out) {
  AMOEBA_PROF_SCOPE(kExport);
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto emit_sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Track naming metadata first so viewers label rows before any event.
  for (std::size_t tid = 0; tid < tracer.track_names().size(); ++tid) {
    emit_sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":" << json_quote(tracer.track_names()[tid]) << "}}";
    emit_sep();
    out << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << tid << ",\"args\":{\"sort_index\":" << tid << "}}";
  }

  // trace_event viewers expect events ordered by timestamp; the tracer
  // records in simulation order which is already non-decreasing, but a
  // stable sort keeps the invariant explicit (and cheap on sorted input).
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(tracer.events().size());
  for (const TraceEvent& ev : tracer.events()) ordered.push_back(&ev);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts_s < b->ts_s;
                   });

  for (const TraceEvent* ev : ordered) {
    emit_sep();
    const double ts_us = ev->ts_s * 1e6;
    out << "{\"name\":" << json_quote(ev->name) << ",\"ph\":\""
        << static_cast<char>(ev->phase) << "\",\"ts\":" << json_number(ts_us)
        << ",\"pid\":1,\"tid\":" << ev->track;
    // Async pairs are matched on (cat, id, name); category must not be empty.
    const std::string cat =
        ev->category.empty() ? (is_async(ev->phase) ? "async" : "")
                             : ev->category;
    if (!cat.empty()) out << ",\"cat\":" << json_quote(cat);
    if (is_async(ev->phase)) {
      char idbuf[24];
      std::snprintf(idbuf, sizeof idbuf, "0x%llx",
                    static_cast<unsigned long long>(ev->async_id));
      out << ",\"id\":\"" << idbuf << "\"";
    }
    if (!ev->args.empty()) {
      out << ",\"args\":";
      write_args(ev->args, out);
    }
    out << "}";
  }
  out << "\n]}\n";
}

namespace {

void write_number_map(
    const std::vector<std::pair<std::string, double>>& entries,
    std::ostream& out) {
  out << "{";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out << ",";
    out << json_quote(entries[i].first) << ":" << json_number(entries[i].second);
  }
  out << "}";
}

void write_histogram_snapshot(const HistogramSnapshot& h, std::ostream& out) {
  out << "{\"count\":" << h.count << ",\"sum\":" << json_number(h.sum);
  const auto opt = [&out](const char* key, const std::optional<double>& v) {
    if (v) out << ",\"" << key << "\":" << json_number(*v);
  };
  opt("min", h.min);
  opt("max", h.max);
  opt("p50", h.p50);
  opt("p95", h.p95);
  opt("p99", h.p99);
  out << "}";
}

}  // namespace

void write_metrics_jsonl(const MetricsRegistry& metrics, std::ostream& out) {
  AMOEBA_PROF_SCOPE(kExport);
  for (const MetricsSnapshot& snap : metrics.snapshots()) {
    out << "{\"t\":" << json_number(snap.time_s) << ",\"counters\":";
    write_number_map(snap.counters, out);
    out << ",\"gauges\":";
    write_number_map(snap.gauges, out);
    out << ",\"histograms\":{";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      if (i > 0) out << ",";
      out << json_quote(snap.histograms[i].first) << ":";
      write_histogram_snapshot(snap.histograms[i].second, out);
    }
    out << "}}\n";
  }
}

namespace {

bool parse_number_map(const JsonValue& obj,
                      std::vector<std::pair<std::string, double>>& out) {
  if (!obj.is_object()) return false;
  for (const auto& [key, v] : obj.object) {
    if (!v.is_number()) return false;
    out.emplace_back(key, v.number);
  }
  return true;
}

bool parse_histogram_snapshot(const JsonValue& obj, HistogramSnapshot& out) {
  if (!obj.is_object()) return false;
  const JsonValue* count = obj.find("count");
  const JsonValue* sum = obj.find("sum");
  if (count == nullptr || !count->is_number() || sum == nullptr ||
      !sum->is_number()) {
    return false;
  }
  out.count = static_cast<std::uint64_t>(count->number);
  out.sum = sum->number;
  const auto opt = [&obj](const char* key) -> std::optional<double> {
    const JsonValue* v = obj.find(key);
    if (v == nullptr || !v->is_number()) return std::nullopt;
    return v->number;
  };
  out.min = opt("min");
  out.max = opt("max");
  out.p50 = opt("p50");
  out.p95 = opt("p95");
  out.p99 = opt("p99");
  return true;
}

}  // namespace

bool parse_metrics_jsonl(std::istream& in, std::vector<MetricsSnapshot>& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::optional<JsonValue> doc = parse_json(line);
    if (!doc || !doc->is_object()) return false;
    MetricsSnapshot snap;
    const JsonValue* t = doc->find("t");
    if (t == nullptr || !t->is_number()) return false;
    snap.time_s = t->number;
    const JsonValue* counters = doc->find("counters");
    const JsonValue* gauges = doc->find("gauges");
    const JsonValue* histograms = doc->find("histograms");
    if (counters == nullptr || !parse_number_map(*counters, snap.counters)) {
      return false;
    }
    if (gauges == nullptr || !parse_number_map(*gauges, snap.gauges)) {
      return false;
    }
    if (histograms == nullptr || !histograms->is_object()) return false;
    for (const auto& [key, v] : histograms->object) {
      HistogramSnapshot hs;
      if (!parse_histogram_snapshot(v, hs)) return false;
      snap.histograms.emplace_back(key, hs);
    }
    out.push_back(std::move(snap));
  }
  return true;
}

namespace {

void write_double_array(const double* data, std::size_t n, std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out << ",";
    out << json_number(data[i]);
  }
  out << "]";
}

}  // namespace

void write_audit_jsonl(const AuditLog& audit, std::ostream& out) {
  AMOEBA_PROF_SCOPE(kExport);
  for (const DecisionRecord& r : audit.records()) {
    out << "{\"t\":" << json_number(r.time_s)
        << ",\"service\":" << json_quote(r.service)
        << ",\"platform\":" << json_quote(r.platform)
        << ",\"decision\":" << json_quote(r.decision)
        << ",\"load_qps\":" << json_number(r.load_qps)
        << ",\"forecast_load_qps\":" << json_number(r.forecast_load_qps)
        << ",\"total_pressures\":";
    write_double_array(r.total_pressures.data(), r.total_pressures.size(), out);
    out << ",\"external_pressures\":";
    write_double_array(r.external_pressures.data(), r.external_pressures.size(),
                       out);
    out << ",\"features\":";
    write_double_array(r.features.data(), r.features.size(), out);
    if (r.weights) {
      out << ",\"weights\":";
      write_double_array(r.weights->data(), r.weights->size(), out);
    }
    out << ",\"mu\":" << json_number(r.mu)
        << ",\"predicted_service_s\":" << json_number(r.predicted_service_s)
        << ",\"lambda_iterates\":";
    write_double_array(r.lambda_iterates.data(), r.lambda_iterates.size(), out);
    if (r.lambda_max) {
      out << ",\"lambda_max\":" << json_number(*r.lambda_max);
    }
    if (r.predicted_p95_s) {
      out << ",\"predicted_p95_s\":" << json_number(*r.predicted_p95_s);
    }
    if (r.observed_p95_s) {
      out << ",\"observed_p95_s\":" << json_number(*r.observed_p95_s);
    }
    out << ",\"qos_target_s\":" << json_number(r.qos_target_s);
    // Stage id only when the record came from a call-graph run, so
    // standalone audit logs (and their golden files) stay byte-stable.
    if (r.stage >= 0) {
      out << ",\"stage\":" << r.stage;
    }
    out << ",\"n_containers\":" << r.n_containers
        << ",\"prewarm_target\":" << r.prewarm_target
        << ",\"votes_to_serverless\":" << r.votes_to_serverless
        << ",\"votes_to_iaas\":" << r.votes_to_iaas << "}\n";
  }
}

namespace {

void rule(std::ostream& out, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) out << '-';
  out << "\n";
}

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

}  // namespace

void write_summary(const Observer& obs, std::ostream& out) {
  AMOEBA_PROF_SCOPE(kExport);
  out << "== observability summary ==\n";

  if (obs.audit_on()) {
    // Decision counts per (service, decision), in first-seen order.
    std::vector<std::pair<std::string, std::uint64_t>> counts;
    for (const DecisionRecord& r : obs.audit().records()) {
      const std::string key = r.service + " / " + r.decision;
      auto it = std::find_if(counts.begin(), counts.end(),
                             [&](const auto& kv) { return kv.first == key; });
      if (it == counts.end()) {
        counts.emplace_back(key, 1);
      } else {
        ++it->second;
      }
    }
    out << "\ndecisions (" << obs.audit().size() << " records)\n";
    rule(out, 48);
    for (const auto& [key, n] : counts) {
      out << "  " << std::left << std::setw(36) << key << std::right
          << std::setw(8) << n << "\n";
    }
  }

  if (obs.metrics_on()) {
    const auto& snaps = obs.metrics().snapshots();
    if (!snaps.empty()) {
      const MetricsSnapshot& last = snaps.back();
      out << "\nfinal counters (t=" << fmt(last.time_s) << "s)\n";
      rule(out, 48);
      for (const auto& [key, v] : last.counters) {
        out << "  " << std::left << std::setw(36) << key << std::right
            << std::setw(10) << fmt(v) << "\n";
      }
      out << "\nfinal gauges\n";
      rule(out, 48);
      for (const auto& [key, v] : last.gauges) {
        out << "  " << std::left << std::setw(36) << key << std::right
            << std::setw(10) << fmt(v) << "\n";
      }
      out << "\nhistograms (count / p50 / p95 / p99)\n";
      rule(out, 48);
      for (const auto& [key, h] : last.histograms) {
        out << "  " << std::left << std::setw(30) << key << std::right
            << std::setw(8) << h.count;
        if (h.p50 && h.p95 && h.p99) {
          out << std::setw(12) << fmt(*h.p50) << std::setw(12) << fmt(*h.p95)
              << std::setw(12) << fmt(*h.p99);
        }
        out << "\n";
      }
    }
  }

  if (obs.trace_on()) {
    out << "\ntrace: " << obs.tracer().events().size() << " events on "
        << obs.tracer().track_names().size() << " tracks";
    if (obs.tracer().dropped() > 0) {
      out << " (" << obs.tracer().dropped() << " dropped at cap)";
    }
    out << "\n";
  }
}

ExportPaths parse_export_flags(int argc, char** argv) {
  ExportPaths paths;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--trace-out") {
      paths.trace = argv[++i];
    } else if (flag == "--metrics-out") {
      paths.metrics = argv[++i];
    } else if (flag == "--audit-out") {
      paths.audit = argv[++i];
    } else if (flag == "--summary-out") {
      paths.summary = argv[++i];
    } else if (flag == "--profile-out") {
      paths.profile = argv[++i];
    }
  }
  return paths;
}

std::string with_suffix(const std::string& path, const std::string& suffix) {
  if (suffix.empty()) return path;
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

namespace {

template <typename WriteFn>
void export_one(const std::string& path, const std::string& suffix,
                const char* what, std::ostream& diagnostics, WriteFn&& fn) {
  if (path.empty()) return;
  const std::string full = with_suffix(path, suffix);
  std::ofstream out(full);
  if (!out) {
    diagnostics << "obs: failed to open " << full << " for writing\n";
    return;
  }
  fn(out);
  diagnostics << "obs: wrote " << what << " to " << full << "\n";
}

}  // namespace

void write_profile_exports(const Profiler& profiler, const std::string& path,
                           std::ostream& diagnostics,
                           const std::string& suffix) {
  if (path.empty()) return;
  const ProfileReport report = profiler.report();
  export_one(path, suffix, "profile jsonl", diagnostics,
             [&](std::ostream& out) { write_profile_jsonl(report, out); });
  export_one(with_suffix(path, "_trace"), suffix, "profile chrome trace",
             diagnostics,
             [&](std::ostream& out) { write_profile_chrome_trace(report, out); });
  write_profile_table(report, diagnostics);
}

void write_exports(const Observer& obs, const ExportPaths& paths,
                   std::ostream& diagnostics, const std::string& suffix) {
  export_one(paths.trace, suffix, "chrome trace", diagnostics,
             [&](std::ostream& out) { write_chrome_trace(obs.tracer(), out); });
  export_one(paths.metrics, suffix, "metrics jsonl", diagnostics,
             [&](std::ostream& out) { write_metrics_jsonl(obs.metrics(), out); });
  export_one(paths.audit, suffix, "decision audit jsonl", diagnostics,
             [&](std::ostream& out) { write_audit_jsonl(obs.audit(), out); });
  export_one(paths.summary, suffix, "summary", diagnostics,
             [&](std::ostream& out) { write_summary(obs, out); });
}

}  // namespace amoeba::obs
