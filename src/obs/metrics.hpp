// Labeled metrics registry: counters, gauges, and latency histograms.
//
// Metrics are keyed by a flattened "name{k=v,...}" identity so that nodes
// obtained once stay valid for the life of the registry (std::map never
// relocates values). Periodic `take_snapshot()` calls freeze the current
// values into a time-stamped record for the JSONL exporter; histogram
// snapshots carry summary quantiles rather than raw bins to keep the
// export compact.
//
// Threading model (ahead of the PDES engine sharding): registry
// *structure* — the name→node maps — is mutex-guarded and thread-safe,
// so concurrent shards may look up / create nodes. The returned Counter/
// Gauge/HistogramMetric nodes are NOT internally synchronized: each node
// must be mutated by one owner at a time (today: the single simulation
// thread; under sharding: the shard that registered it). Snapshotting is
// coordinator-only and happens at barriers, never concurrently with node
// mutation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "stats/histogram.hpp"

namespace amoeba::obs {

/// One "k=v" metric label.
struct MetricLabel {
  std::string key;
  std::string value;
};

using MetricLabels = std::vector<MetricLabel>;

/// Canonical identity "name{k=v,...}" (labels sorted by key).
[[nodiscard]] std::string metric_key(const std::string& name,
                                     const MetricLabels& labels);

class Counter {
 public:
  void inc(double delta = 1.0) { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-spaced latency histogram plus exact sum/count/min/max moments.
class HistogramMetric {
 public:
  HistogramMetric() : hist_(1e-6, 1e4, 16) {}

  void observe(double x);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Interpolated quantile; requires count() > 0.
  [[nodiscard]] double quantile(double q) const { return hist_.quantile(q); }

 private:
  stats::LogHistogram hist_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Frozen summary of one histogram at snapshot time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::optional<double> min;
  std::optional<double> max;
  std::optional<double> p50;
  std::optional<double> p95;
  std::optional<double> p99;
};

/// All metric values at one simulation time.
struct MetricsSnapshot {
  double time_s = 0.0;
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class MetricsRegistry {
 public:
  /// Look up or create; returned references stay valid for the registry's
  /// lifetime (std::map node stability). Safe to call concurrently.
  Counter& counter(const std::string& name, const MetricLabels& labels = {})
      AMOEBA_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name, const MetricLabels& labels = {})
      AMOEBA_EXCLUDES(mutex_);
  HistogramMetric& histogram(const std::string& name,
                             const MetricLabels& labels = {})
      AMOEBA_EXCLUDES(mutex_);

  /// Freeze current values into the snapshot series. Coordinator-only:
  /// must not race node mutation (see the threading model above).
  const MetricsSnapshot& take_snapshot(double time_s) AMOEBA_EXCLUDES(mutex_);

  [[nodiscard]] const std::vector<MetricsSnapshot>& snapshots() const noexcept {
    return snapshots_;
  }
  [[nodiscard]] std::size_t size() const AMOEBA_EXCLUDES(mutex_);

 private:
  mutable common::Mutex mutex_;
  std::map<std::string, Counter> counters_ AMOEBA_GUARDED_BY(mutex_);
  std::map<std::string, Gauge> gauges_ AMOEBA_GUARDED_BY(mutex_);
  std::map<std::string, HistogramMetric> histograms_ AMOEBA_GUARDED_BY(mutex_);
  // Coordinator-confined (append in take_snapshot, read after runs); not
  // guarded so exporters can hold the returned reference lock-free.
  std::vector<MetricsSnapshot> snapshots_;
};

}  // namespace amoeba::obs
