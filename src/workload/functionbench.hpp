// FunctionBench-style benchmark suite (Kim & Lee, CLOUD'19), as used in the
// paper's evaluation (Table III): float, matmul, linpack, dd, cloud_stor.
//
// The paper's testbed is unavailable; these presets are synthetic demand
// vectors chosen so that (a) each benchmark lands in the sensitivity class
// the paper's Table III reports, and (b) peak-load resource demands create
// genuine contention on the simulated node (disk ~75% busy at dd's peak,
// NIC ~77% at cloud_stor's peak). See DESIGN.md §2 for the substitution
// rationale.
#pragma once

#include <vector>

#include "workload/function_profile.hpp"

namespace amoeba::workload {

/// Uncontended device rates of the simulated node (Table II: NVMe SSD,
/// 25 Gb/s NIC). Shared by presets, tests and the provisioner.
struct NodeRates {
  double disk_bps = 2.0e9;    ///< NVMe sequential bandwidth
  double net_bps = 3.125e9;   ///< 25 Gb/s
};

[[nodiscard]] FunctionProfile make_float();
[[nodiscard]] FunctionProfile make_matmul();
[[nodiscard]] FunctionProfile make_linpack();
[[nodiscard]] FunctionProfile make_dd();
[[nodiscard]] FunctionProfile make_cloud_stor();

/// All five benchmarks in the paper's Table III order.
[[nodiscard]] std::vector<FunctionProfile> functionbench_suite();

/// A copy of `p` scaled to `fraction` of its peak load — used for the
/// low-peak background services in §VII-A (float, dd, cloud_stor run "with
/// a lower peak load as the background service").
[[nodiscard]] FunctionProfile as_background(FunctionProfile p,
                                            double fraction);

/// A copy of `p` renamed "<name>#<index>" and scaled to `peak_fraction` of
/// its peak load: one managed tenant of a multi-service cluster run. The
/// rename keeps per-function registration, accounting and stream tags
/// distinct when the same benchmark appears several times on one node;
/// scaling lets N tenants fit the node that one full-peak service saturates.
[[nodiscard]] FunctionProfile as_tenant(FunctionProfile p, int index,
                                        double peak_fraction);

/// A synthetic single-resource stressor used by the profiling harness to
/// put an adjustable, known pressure on one resource. `kind` selects which
/// resource the stressor loads.
enum class StressKind { kCpu, kDiskIo, kNetwork };

[[nodiscard]] FunctionProfile make_stressor(StressKind kind);

}  // namespace amoeba::workload
