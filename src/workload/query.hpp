// Per-query records shared by both execution platforms.
//
// `LatencyBreakdown` mirrors the paper's Fig. 4 decomposition of an
// end-to-end serverless query: queueing, cold start, platform processing
// overhead, code loading, function execution, and result posting. IaaS
// queries use the same record with the serverless-only fields at zero.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace amoeba::workload {

struct LatencyBreakdown {
  double queue_s = 0.0;       ///< waiting for a container / worker
  double cold_start_s = 0.0;  ///< container boot attributed to this query
  double overhead_s = 0.0;    ///< auth + scheduling ("processing" in Fig. 4)
  double code_load_s = 0.0;   ///< code/data fetch
  double exec_s = 0.0;        ///< function body (cpu + io + net)
  double post_s = 0.0;        ///< result posting

  [[nodiscard]] double total() const noexcept {
    return queue_s + cold_start_s + overhead_s + code_load_s + exec_s + post_s;
  }

  /// Fraction of end-to-end latency that is platform overhead rather than
  /// useful execution (Fig. 4's claim: 10–45%). Excludes queue + cold start
  /// exactly as the paper's figure does.
  [[nodiscard]] double overhead_fraction() const noexcept {
    const double t = overhead_s + code_load_s + exec_s + post_s;
    return t > 0.0 ? (overhead_s + code_load_s + post_s) / t : 0.0;
  }
};

struct QueryRecord {
  std::uint64_t id = 0;
  std::string function;
  double arrival = 0.0;
  double completion = 0.0;
  LatencyBreakdown breakdown;
  bool cold = false;           ///< suffered a cold start
  double cpu_work_done = 0.0;  ///< sampled core-seconds actually consumed

  [[nodiscard]] double latency() const noexcept { return completion - arrival; }
};

/// Completion observer: invoked exactly once per query.
using QueryCompletionFn = std::function<void(const QueryRecord&)>;

}  // namespace amoeba::workload
