#include "workload/diurnal_trace.hpp"

#include <algorithm>
#include <cmath>

namespace amoeba::workload {

void DiurnalTraceConfig::validate() const {
  AMOEBA_EXPECTS(period_s > 0.0);
  AMOEBA_EXPECTS(peak_qps > 0.0);
  AMOEBA_EXPECTS(trough_fraction > 0.0 && trough_fraction <= 1.0);
  AMOEBA_EXPECTS(morning_center >= 0.0 && morning_center <= 1.0);
  AMOEBA_EXPECTS(evening_center >= 0.0 && evening_center <= 1.0);
  AMOEBA_EXPECTS(peak_width > 0.0 && peak_width < 0.5);
  AMOEBA_EXPECTS(evening_relative > 0.0 && evening_relative <= 1.0);
  AMOEBA_EXPECTS(noise_cv >= 0.0);
  AMOEBA_EXPECTS(noise_interval_s > 0.0);
}

DiurnalTrace::DiurnalTrace(DiurnalTraceConfig cfg, std::uint64_t noise_seed)
    : cfg_(cfg), noise_seed_(noise_seed) {
  cfg_.validate();
  // With lognormal(mean=1, cv) noise, cap the factor at mean + 4 sigma so
  // max_rate() is a true bound for thinning.
  noise_cap_ = 1.0 + 4.0 * cfg_.noise_cv;
}

namespace {
// Periodic (wrapped) squared distance between day-fractions a and b.
double wrapped_delta(double a, double b) {
  double d = std::abs(a - b);
  return std::min(d, 1.0 - d);
}
}  // namespace

double DiurnalTrace::base_rate(double t) const {
  const double day_frac =
      std::fmod(t / cfg_.period_s + cfg_.phase + 1e6, 1.0);
  const double w = cfg_.peak_width;
  auto bump = [&](double center, double height) {
    const double d = wrapped_delta(day_frac, center);
    return height * std::exp(-0.5 * (d / w) * (d / w));
  };
  // Shape in [0, 1]: baseline trough plus two Gaussian rushes, clipped.
  double shape = cfg_.trough_fraction;
  shape += (1.0 - cfg_.trough_fraction) *
           std::min(1.0, bump(cfg_.morning_center, 1.0) +
                             bump(cfg_.evening_center, cfg_.evening_relative));
  return cfg_.peak_qps * std::min(shape, 1.0);
}

double DiurnalTrace::noise_factor(double t) const {
  if (cfg_.noise_cv <= 0.0) return 1.0;
  // Piecewise-constant factor: hash the interval index into an RNG stream.
  const auto interval = static_cast<std::uint64_t>(
      std::floor(t / cfg_.noise_interval_s) + 1.0e6);
  sim::Rng rng(noise_seed_ ^ (interval * 0x9e3779b97f4a7c15ULL));
  const double f = rng.lognormal_mean_cv(1.0, cfg_.noise_cv);
  return std::min(f, noise_cap_);
}

double DiurnalTrace::rate(double t) const {
  return base_rate(t) * noise_factor(t);
}

double DiurnalTrace::max_rate() const { return cfg_.peak_qps * noise_cap_; }

std::vector<double> DiurnalTrace::sample_day(std::size_t n) const {
  AMOEBA_EXPECTS(n >= 2);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        cfg_.period_s * static_cast<double>(i) / static_cast<double>(n);
    out[i] = base_rate(t);
  }
  return out;
}

}  // namespace amoeba::workload
