// Microservice call graphs — DAGs of stages sharing one end-to-end SLO.
//
// Real products are not single microservices: a user query enters a root
// service and fans out through a DAG of downstream stages (search, ads,
// render, ...) whose *critical-path* latency is what the user experiences.
// `CallGraph` describes such a DAG: each stage carries a FunctionProfile
// (the per-stage workload) and a deployment pin; edges are AND-joins (a
// stage starts once every parent finished for that query).
//
// Canonical form: build() reduces the declared graph to a canonical object
// that depends only on *content* (profiles, pins, structure), never on
// stage labels or sibling declaration order. Stages are sorted by
// (longest-path depth, iterated content hash), which is topological, and
// internal service names derive from the canonical index. Two builders
// declaring isomorphic graphs therefore produce byte-identical CallGraphs,
// extending the repo's ordering discipline (PR 6) to DAG inputs: relabeling
// stages or permuting sibling declarations cannot change a simulation's
// event trace. Automorphic stages (identical content AND indistinguishable
// structure) may swap canonical indices across declaration orders, but a
// swap between indistinguishable stages yields the same built object.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "workload/function_profile.hpp"

namespace amoeba::workload {

/// Deployment constraint of one stage (consumed by the exp driver).
enum class StagePin : std::uint8_t {
  kManaged,         ///< full Amoeba control loop decides the platform
  kIaasOnly,        ///< stays on its just-enough VM (never switches)
  kServerlessOnly,  ///< biased to FaaS as soon as the controller allows
};

[[nodiscard]] const char* to_string(StagePin p) noexcept;

struct CallGraphStage {
  std::string label;        ///< user-facing id; never reaches the simulation
  FunctionProfile profile;  ///< per-stage workload (one invocation per query)
  StagePin pin = StagePin::kManaged;
};

class CallGraph {
 public:
  class Builder;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(stages_.size());
  }

  /// Stage by canonical index (0 <= k < size()).
  [[nodiscard]] const CallGraphStage& stage(int k) const;

  /// Internal service name of stage k: "<profile.name>@s<k>". Structure-
  /// derived, so the simulated name ordering is label-independent.
  [[nodiscard]] const std::string& service_name(int k) const;

  /// Canonical index of the stage declared with this label (-1 if absent).
  [[nodiscard]] int stage_by_label(const std::string& label) const;

  [[nodiscard]] const std::vector<int>& parents(int k) const;
  [[nodiscard]] const std::vector<int>& children(int k) const;
  [[nodiscard]] const std::vector<int>& roots() const noexcept {
    return roots_;
  }
  [[nodiscard]] const std::vector<int>& leaves() const noexcept {
    return leaves_;
  }

  /// Longest-path depth of stage k (roots are 0). Canonical order is
  /// sorted by depth first, so iteration order is topological.
  [[nodiscard]] int depth(int k) const;

  /// Maximum number of stages on any root-to-leaf path.
  [[nodiscard]] int max_path_stages() const;

  /// Every root-to-leaf path as a list of canonical stage indices.
  [[nodiscard]] std::vector<std::vector<int>> paths() const;

  /// For per-stage weights w (w[k] > 0), the maximum root-to-leaf path sum
  /// passing *through* each stage: S_k = up_k + w_k + down_k. The budget
  /// decomposer's denominator.
  [[nodiscard]] std::vector<double> path_sums_through(
      const std::vector<double>& w) const;

  /// max over root-to-leaf paths of the weight sum (== max_k S_k).
  [[nodiscard]] double critical_path(const std::vector<double>& w) const;

  /// Content hash of the canonical form (profiles, pins, edges). Equal for
  /// isomorphic declarations; label- and declaration-order-independent.
  [[nodiscard]] std::uint64_t structure_hash() const noexcept {
    return structure_hash_;
  }

 private:
  friend class Builder;
  CallGraph() = default;

  std::vector<CallGraphStage> stages_;     ///< canonical order
  std::vector<std::string> service_names_;
  std::vector<std::vector<int>> parents_;  ///< sorted canonical ids
  std::vector<std::vector<int>> children_;
  std::vector<int> roots_;
  std::vector<int> leaves_;
  std::vector<int> depth_;
  std::uint64_t structure_hash_ = 0;
};

/// Declares stages and edges in any order; build() canonicalizes.
class CallGraph::Builder {
 public:
  /// Returns a declaration handle for add_edge. Labels must be unique and
  /// non-empty; the profile must validate.
  int add_stage(std::string label, FunctionProfile profile,
                StagePin pin = StagePin::kManaged);

  /// Directed dependency: queries flow from -> to (AND-join at `to`).
  void add_edge(int from, int to);

  /// Validate (non-empty, acyclic, no self/duplicate edges) and produce
  /// the canonical CallGraph.
  [[nodiscard]] CallGraph build() const;

 private:
  struct DeclStage {
    std::string label;
    FunctionProfile profile;
    StagePin pin;
  };
  std::vector<DeclStage> stages_;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace amoeba::workload
