#include "workload/functionbench.hpp"

#include <string>

namespace amoeba::workload {

namespace {
// Common serverless-path overheads (paper Fig. 4: processing + code load +
// result post amount to 10–45% of end-to-end latency).
constexpr double kPlatformOverheadS = 0.018;  // auth + scheduling
constexpr double kRpcOverheadS = 0.002;       // IaaS in-VM request handling
constexpr double kMiB = 1024.0 * 1024.0;
}  // namespace

FunctionProfile make_float() {
  FunctionProfile p;
  p.name = "float";
  p.exec = {.cpu_seconds = 0.080, .io_bytes = 0.0, .net_bytes = 0.0};
  p.code_bytes = 2.0 * kMiB;
  p.result_bytes = 10e3;
  p.platform_overhead_s = kPlatformOverheadS;
  p.rpc_overhead_s = kRpcOverheadS;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.08;
  p.qos_target_s = 0.15;   // tight target (paper: float has tight QoS)
  p.peak_load_qps = 120.0;
  p.validate();
  return p;
}

FunctionProfile make_matmul() {
  FunctionProfile p;
  p.name = "matmul";
  p.exec = {.cpu_seconds = 0.250, .io_bytes = 0.0, .net_bytes = 0.0};
  p.code_bytes = 16.0 * kMiB;  // code + input matrices
  p.result_bytes = 50e3;
  p.platform_overhead_s = kPlatformOverheadS;
  p.rpc_overhead_s = kRpcOverheadS;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.10;
  p.qos_target_s = 1.0;
  p.peak_load_qps = 30.0;
  p.validate();
  return p;
}

FunctionProfile make_linpack() {
  FunctionProfile p;
  p.name = "linpack";
  p.exec = {.cpu_seconds = 0.400, .io_bytes = 0.0, .net_bytes = 0.0};
  p.code_bytes = 16.0 * kMiB;  // code + input system
  p.result_bytes = 20e3;
  p.platform_overhead_s = kPlatformOverheadS;
  p.rpc_overhead_s = kRpcOverheadS;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.10;
  p.qos_target_s = 1.5;
  p.peak_load_qps = 20.0;
  p.validate();
  return p;
}

FunctionProfile make_dd() {
  FunctionProfile p;
  p.name = "dd";
  p.exec = {.cpu_seconds = 0.035, .io_bytes = 100e6, .net_bytes = 0.0};
  p.code_bytes = 1.0 * kMiB;
  p.result_bytes = 10e3;
  p.platform_overhead_s = kPlatformOverheadS;
  p.rpc_overhead_s = kRpcOverheadS;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.15;
  p.qos_target_s = 0.5;
  p.peak_load_qps = 15.0;  // peak disk demand = 1.5 GB/s (75% of NVMe)
  p.validate();
  return p;
}

FunctionProfile make_cloud_stor() {
  FunctionProfile p;
  p.name = "cloud_stor";
  p.exec = {.cpu_seconds = 0.003, .io_bytes = 12e6, .net_bytes = 30e6};
  p.code_bytes = 0.5 * kMiB;
  p.result_bytes = 50e3;
  p.platform_overhead_s = kPlatformOverheadS;
  p.rpc_overhead_s = kRpcOverheadS;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.20;
  p.qos_target_s = 0.12;   // tight; network is the bottleneck (paper §II-B)
  p.peak_load_qps = 80.0;  // peak NIC demand = 2.4 GB/s (77% of 25 GbE)
  p.validate();
  return p;
}

std::vector<FunctionProfile> functionbench_suite() {
  return {make_float(), make_matmul(), make_linpack(), make_dd(),
          make_cloud_stor()};
}

FunctionProfile as_background(FunctionProfile p, double fraction) {
  AMOEBA_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  p.name += "_bg";
  p.peak_load_qps *= fraction;
  return p;
}

FunctionProfile as_tenant(FunctionProfile p, int index, double peak_fraction) {
  AMOEBA_EXPECTS(index >= 0);
  AMOEBA_EXPECTS(peak_fraction > 0.0 && peak_fraction <= 1.0);
  p.name += "#" + std::to_string(index);
  p.peak_load_qps *= peak_fraction;
  return p;
}

FunctionProfile make_stressor(StressKind kind) {
  FunctionProfile p;
  p.platform_overhead_s = kPlatformOverheadS;
  p.rpc_overhead_s = kRpcOverheadS;
  p.memory_mb = 128.0;
  p.cpu_cv = 0.0;  // deterministic: the profiler wants clean pressure steps
  p.code_bytes = 0.5 * kMiB;
  p.result_bytes = 1e3;
  p.qos_target_s = 10.0;   // stressors have no QoS of their own
  p.peak_load_qps = 200.0;
  switch (kind) {
    case StressKind::kCpu:
      p.name = "stress_cpu";
      p.exec = {.cpu_seconds = 0.100, .io_bytes = 0.0, .net_bytes = 0.0};
      break;
    case StressKind::kDiskIo:
      p.name = "stress_io";
      p.exec = {.cpu_seconds = 0.002, .io_bytes = 50e6, .net_bytes = 0.0};
      break;
    case StressKind::kNetwork:
      p.name = "stress_net";
      p.exec = {.cpu_seconds = 0.002, .io_bytes = 0.0, .net_bytes = 40e6};
      break;
  }
  p.validate();
  return p;
}

}  // namespace amoeba::workload
