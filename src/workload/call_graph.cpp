#include "workload/call_graph.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace amoeba::workload {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t w) {
  h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_string(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_double(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Hash of everything about a stage except its label and its position:
/// the profile content and the pin. Two stages with equal content hashes
/// are interchangeable as far as the simulation is concerned.
std::uint64_t content_hash(const FunctionProfile& p, StagePin pin) {
  std::uint64_t h = hash_string(p.name);
  h = mix(h, hash_double(p.exec.cpu_seconds));
  h = mix(h, hash_double(p.exec.io_bytes));
  h = mix(h, hash_double(p.exec.net_bytes));
  h = mix(h, hash_double(p.code_bytes));
  h = mix(h, hash_double(p.result_bytes));
  h = mix(h, hash_double(p.platform_overhead_s));
  h = mix(h, hash_double(p.rpc_overhead_s));
  h = mix(h, hash_double(p.memory_mb));
  h = mix(h, hash_double(p.cpu_cv));
  h = mix(h, hash_double(p.qos_target_s));
  h = mix(h, hash_double(p.peak_load_qps));
  h = mix(h, static_cast<std::uint64_t>(pin));
  return h;
}

/// Combine a multiset of neighbour hashes order-independently-then-
/// deterministically: sort, then fold.
std::uint64_t fold_sorted(std::vector<std::uint64_t> hs) {
  std::sort(hs.begin(), hs.end());
  std::uint64_t h = 0x51ed2701a2b4c693ULL;
  for (const std::uint64_t v : hs) h = mix(h, v);
  return h;
}

}  // namespace

const char* to_string(StagePin p) noexcept {
  switch (p) {
    case StagePin::kManaged: return "managed";
    case StagePin::kIaasOnly: return "iaas_only";
    case StagePin::kServerlessOnly: return "serverless_only";
  }
  return "?";
}

const CallGraphStage& CallGraph::stage(int k) const {
  AMOEBA_EXPECTS_VALS(k >= 0 && k < size(), k);
  return stages_[static_cast<std::size_t>(k)];
}

const std::string& CallGraph::service_name(int k) const {
  AMOEBA_EXPECTS_VALS(k >= 0 && k < size(), k);
  return service_names_[static_cast<std::size_t>(k)];
}

int CallGraph::stage_by_label(const std::string& label) const {
  for (int k = 0; k < size(); ++k) {
    if (stages_[static_cast<std::size_t>(k)].label == label) return k;
  }
  return -1;
}

const std::vector<int>& CallGraph::parents(int k) const {
  AMOEBA_EXPECTS_VALS(k >= 0 && k < size(), k);
  return parents_[static_cast<std::size_t>(k)];
}

const std::vector<int>& CallGraph::children(int k) const {
  AMOEBA_EXPECTS_VALS(k >= 0 && k < size(), k);
  return children_[static_cast<std::size_t>(k)];
}

int CallGraph::depth(int k) const {
  AMOEBA_EXPECTS_VALS(k >= 0 && k < size(), k);
  return depth_[static_cast<std::size_t>(k)];
}

int CallGraph::max_path_stages() const {
  int deepest = 0;
  for (const int d : depth_) deepest = std::max(deepest, d);
  return deepest + 1;
}

std::vector<std::vector<int>> CallGraph::paths() const {
  std::vector<std::vector<int>> out;
  std::vector<int> prefix;
  // Depth-first enumeration over the (already canonical) adjacency lists,
  // so the path order is itself canonical.
  auto walk = [&](auto&& self, int v) -> void {
    prefix.push_back(v);
    const auto& kids = children_[static_cast<std::size_t>(v)];
    if (kids.empty()) {
      out.push_back(prefix);
    } else {
      for (const int c : kids) self(self, c);
    }
    prefix.pop_back();
  };
  for (const int r : roots_) walk(walk, r);
  return out;
}

std::vector<double> CallGraph::path_sums_through(
    const std::vector<double>& w) const {
  AMOEBA_EXPECTS_VALS(static_cast<int>(w.size()) == size(), w.size(), size());
  for (const double wi : w) AMOEBA_EXPECTS_VALS(wi > 0.0, wi);
  const std::size_t n = stages_.size();
  // Canonical order is topological (strictly increasing depth along every
  // edge): forward pass for the heaviest ancestor chain, backward pass for
  // the heaviest descendant chain.
  std::vector<double> up(n, 0.0);    ///< max weight-sum of a strict ancestor chain
  std::vector<double> down(n, 0.0);  ///< ... of a strict descendant chain
  for (std::size_t k = 0; k < n; ++k) {
    for (const int p : parents_[k]) {
      const auto pi = static_cast<std::size_t>(p);
      up[k] = std::max(up[k], up[pi] + w[pi]);
    }
  }
  for (std::size_t k = n; k-- > 0;) {
    for (const int c : children_[k]) {
      const auto ci = static_cast<std::size_t>(c);
      down[k] = std::max(down[k], down[ci] + w[ci]);
    }
  }
  std::vector<double> sums(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) sums[k] = up[k] + w[k] + down[k];
  return sums;
}

double CallGraph::critical_path(const std::vector<double>& w) const {
  const auto sums = path_sums_through(w);
  double best = 0.0;
  for (const double s : sums) best = std::max(best, s);
  return best;
}

int CallGraph::Builder::add_stage(std::string label, FunctionProfile profile,
                                  StagePin pin) {
  AMOEBA_EXPECTS_MSG(!label.empty(), "stage label must be non-empty");
  for (const auto& s : stages_) {
    AMOEBA_EXPECTS_MSG(s.label != label, "duplicate stage label: " + label);
  }
  profile.validate();
  stages_.push_back(DeclStage{std::move(label), std::move(profile), pin});
  return static_cast<int>(stages_.size()) - 1;
}

void CallGraph::Builder::add_edge(int from, int to) {
  const int n = static_cast<int>(stages_.size());
  AMOEBA_EXPECTS_VALS(from >= 0 && from < n, from, n);
  AMOEBA_EXPECTS_VALS(to >= 0 && to < n, to, n);
  AMOEBA_EXPECTS_MSG(from != to, "self-edge on stage " +
                                     stages_[static_cast<std::size_t>(from)]
                                         .label);
  for (const auto& [f, t] : edges_) {
    AMOEBA_EXPECTS_MSG(!(f == from && t == to), "duplicate edge");
  }
  edges_.emplace_back(from, to);
}

CallGraph CallGraph::Builder::build() const {
  AMOEBA_EXPECTS_MSG(!stages_.empty(), "call graph needs at least one stage");
  const std::size_t n = stages_.size();

  std::vector<std::vector<int>> kids(n);
  std::vector<std::vector<int>> pars(n);
  for (const auto& [f, t] : edges_) {
    kids[static_cast<std::size_t>(f)].push_back(t);
    pars[static_cast<std::size_t>(t)].push_back(f);
  }

  // Longest-path depth via Kahn's algorithm; also the acyclicity check.
  std::vector<int> indeg(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    indeg[v] = static_cast<int>(pars[v].size());
  }
  std::vector<int> depth(n, 0);
  std::vector<int> queue;
  for (std::size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(static_cast<int>(v));
  }
  std::size_t processed = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int v = queue[head];
    ++processed;
    for (const int c : kids[static_cast<std::size_t>(v)]) {
      const auto ci = static_cast<std::size_t>(c);
      depth[ci] = std::max(depth[ci], depth[static_cast<std::size_t>(v)] + 1);
      if (--indeg[ci] == 0) queue.push_back(c);
    }
  }
  AMOEBA_EXPECTS_MSG(processed == n, "call graph contains a cycle");

  // Iterated content hashing (Weisfeiler-Lehman over content, depth and
  // both neighbourhoods). n rounds reach the refinement fixpoint for any
  // DAG of n stages; labels and declaration order never enter.
  std::vector<std::uint64_t> h(n);
  for (std::size_t v = 0; v < n; ++v) {
    h[v] = mix(content_hash(stages_[v].profile, stages_[v].pin),
               static_cast<std::uint64_t>(depth[v]));
  }
  for (std::size_t round = 0; round < n; ++round) {
    std::vector<std::uint64_t> next(n);
    for (std::size_t v = 0; v < n; ++v) {
      std::vector<std::uint64_t> up;
      std::vector<std::uint64_t> down;
      up.reserve(pars[v].size());
      down.reserve(kids[v].size());
      for (const int p : pars[v]) up.push_back(h[static_cast<std::size_t>(p)]);
      for (const int c : kids[v]) {
        down.push_back(h[static_cast<std::size_t>(c)]);
      }
      next[v] = mix(mix(h[v], fold_sorted(std::move(up))),
                    mix(0x1234567890abcdefULL, fold_sorted(std::move(down))));
    }
    h = std::move(next);
  }

  // Canonical order: (depth, refined hash, declaration index). Depth makes
  // it topological; the hash makes it declaration-order-independent; the
  // declaration index only ever breaks ties between automorphic stages,
  // where any choice yields the same built object.
  std::vector<int> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = static_cast<int>(v);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto ai = static_cast<std::size_t>(a);
    const auto bi = static_cast<std::size_t>(b);
    if (depth[ai] != depth[bi]) return depth[ai] < depth[bi];
    if (h[ai] != h[bi]) return h[ai] < h[bi];
    return a < b;
  });
  std::vector<int> canon_of(n);  ///< declaration index -> canonical index
  for (std::size_t k = 0; k < n; ++k) {
    canon_of[static_cast<std::size_t>(order[k])] = static_cast<int>(k);
  }

  CallGraph g;
  g.stages_.reserve(n);
  g.service_names_.reserve(n);
  g.parents_.resize(n);
  g.children_.resize(n);
  g.depth_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto decl = static_cast<std::size_t>(order[k]);
    g.stages_.push_back(CallGraphStage{stages_[decl].label,
                                       stages_[decl].profile,
                                       stages_[decl].pin});
    g.service_names_.push_back(stages_[decl].profile.name + "@s" +
                               std::to_string(k));
    g.depth_[k] = depth[decl];
    for (const int p : pars[decl]) {
      g.parents_[k].push_back(canon_of[static_cast<std::size_t>(p)]);
    }
    for (const int c : kids[decl]) {
      g.children_[k].push_back(canon_of[static_cast<std::size_t>(c)]);
    }
    std::sort(g.parents_[k].begin(), g.parents_[k].end());
    std::sort(g.children_[k].begin(), g.children_[k].end());
  }
  for (int k = 0; k < g.size(); ++k) {
    const auto ki = static_cast<std::size_t>(k);
    if (g.parents_[ki].empty()) g.roots_.push_back(k);
    if (g.children_[ki].empty()) g.leaves_.push_back(k);
  }

  std::uint64_t sh = 0x6d6f65626121ULL;
  for (std::size_t k = 0; k < n; ++k) {
    sh = mix(sh, h[static_cast<std::size_t>(order[k])]);
    for (const int c : g.children_[k]) {
      sh = mix(sh, static_cast<std::uint64_t>(c));
    }
  }
  g.structure_hash_ = sh;

  AMOEBA_ENSURES(!g.roots_.empty() && !g.leaves_.empty());
  return g;
}

}  // namespace amoeba::workload
