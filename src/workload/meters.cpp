#include "workload/meters.hpp"

namespace amoeba::workload {

const char* to_string(MeterKind kind) noexcept {
  switch (kind) {
    case MeterKind::kCpuMemory: return "cpu_memory";
    case MeterKind::kDiskIo: return "disk_io";
    case MeterKind::kNetwork: return "network";
  }
  return "?";
}

FunctionProfile meter_profile(MeterKind kind) {
  FunctionProfile p;
  p.platform_overhead_s = 0.012;
  p.rpc_overhead_s = 0.002;
  p.memory_mb = 128.0;
  p.cpu_cv = 0.0;  // deterministic bodies: latency variation = contention
  p.code_bytes = 0.25 * 1024 * 1024;
  p.result_bytes = 1e3;
  p.qos_target_s = 10.0;
  p.peak_load_qps = kMeterProbeQps;
  switch (kind) {
    case MeterKind::kCpuMemory:
      // 0.44 core-seconds at 1 QPS = 1.1% of a 40-core node (§VII-E).
      p.name = "meter_cpu_memory";
      p.exec = {.cpu_seconds = 0.440, .io_bytes = 0.0, .net_bytes = 0.0};
      break;
    case MeterKind::kDiskIo:
      // 0.20 core-seconds = 0.5% CPU. The 200 MB IO body balances two
      // pressures: heavy enough that the latency-vs-pressure curve is
      // steep relative to the meter's small CPU share (CPU cross-talk
      // would otherwise masquerade as disk pressure), light enough that
      // the probe itself does not become a material disk tenant.
      p.name = "meter_disk_io";
      p.exec = {.cpu_seconds = 0.200, .io_bytes = 200e6, .net_bytes = 0.0};
      break;
    case MeterKind::kNetwork:
      // 0.24 core-seconds = 0.6% CPU; 150 MB body, same balance.
      p.name = "meter_network";
      p.exec = {.cpu_seconds = 0.240, .io_bytes = 0.0, .net_bytes = 150e6};
      break;
  }
  p.validate();
  return p;
}

}  // namespace amoeba::workload
