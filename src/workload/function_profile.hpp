// Microservice workload description.
//
// A `FunctionProfile` captures everything the platforms need to execute one
// query of a microservice: its per-query resource demands (the ground
// truth the simulator charges against shared resources) and its service
// contract (QoS target, provisioned peak load). The Amoeba controller
// never reads the demand fields — it works purely from observed latencies,
// as on a real cluster.
#pragma once

#include <cstdint>
#include <string>

#include "common/assert.hpp"

namespace amoeba::workload {

/// Resource demands of one query's *execution* phase.
struct ResourceDemand {
  double cpu_seconds = 0.0;  ///< core-seconds of compute
  double io_bytes = 0.0;     ///< bytes moved over the node's disk
  double net_bytes = 0.0;    ///< bytes moved over the node's NIC

  [[nodiscard]] bool valid() const noexcept {
    return cpu_seconds >= 0.0 && io_bytes >= 0.0 && net_bytes >= 0.0;
  }
};

struct FunctionProfile {
  std::string name;

  ResourceDemand exec;  ///< demands of the function body itself

  // Serverless-only per-query overheads (paper Fig. 4: "processing, code
  // loading, and result posting"). IaaS instances keep code resident and
  // answer over an established connection, so they only pay `rpc_overhead_s`.
  double code_bytes = 0.0;          ///< code+data fetched per invocation (disk IO)
  double result_bytes = 0.0;        ///< result posted per invocation (network)
  double platform_overhead_s = 0.0; ///< auth + scheduling fixed delay
  double rpc_overhead_s = 0.0;      ///< IaaS-side fixed request overhead

  double memory_mb = 256.0;  ///< per-container / per-worker footprint
  double cpu_cv = 0.1;       ///< lognormal coefficient of variation of cpu work

  double qos_target_s = 1.0;   ///< 95%-ile latency target
  double peak_load_qps = 10.0; ///< provisioned peak arrival rate

  /// Validate invariants; throws ContractError on nonsense profiles.
  void validate() const;

  /// Ideal solo execution time on an idle node (no queuing, warm
  /// container): platform overhead + code load + cpu + io + net + posting,
  /// at the given uncontended rates. Used by tests and the provisioner.
  [[nodiscard]] double ideal_serverless_latency(double disk_bps,
                                                double net_bps) const;

  /// Ideal solo IaaS latency (rpc + cpu + io + net at uncontended rates).
  [[nodiscard]] double ideal_iaas_latency(double disk_bps,
                                          double net_bps) const;
};

/// Qualitative sensitivity classes, mirroring the paper's Table III.
enum class Sensitivity : std::uint8_t { kNone, kLow, kMedium, kHigh };

[[nodiscard]] const char* to_string(Sensitivity s) noexcept;

struct SensitivityVector {
  Sensitivity cpu = Sensitivity::kNone;
  Sensitivity memory = Sensitivity::kNone;
  Sensitivity disk_io = Sensitivity::kNone;
  Sensitivity network = Sensitivity::kNone;
};

/// Classify a profile's sensitivities from its demand mix (the fraction of
/// uncontended latency each resource accounts for).
[[nodiscard]] SensitivityVector classify_sensitivity(const FunctionProfile& p,
                                                     double disk_bps,
                                                     double net_bps);

}  // namespace amoeba::workload
