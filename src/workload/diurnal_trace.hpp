// Synthetic diurnal load trace.
//
// The paper drives every benchmark with the Didi ride-hailing trace, which
// is not redistributable. §II-A notes "the actual fluctuate pattern does
// not affect the analysis"; what matters is the diurnal alternation between
// a peak and a trough at 20–30% of peak (paper §I). `DiurnalTrace` produces
// a two-peak (morning/evening rush) day, optionally with multiplicative
// noise and bursts, compressed to an arbitrary simulated period so full-day
// experiments finish in seconds.
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "sim/random.hpp"

namespace amoeba::workload {

struct DiurnalTraceConfig {
  double period_s = 3600.0;      ///< length of one simulated "day"
  double peak_qps = 100.0;       ///< maximum arrival rate
  double trough_fraction = 0.25; ///< trough rate / peak rate (paper: <30%)
  double morning_center = 0.35;  ///< fraction of day: morning rush position
  double evening_center = 0.78;  ///< fraction of day: evening rush position
  double peak_width = 0.07;      ///< rush width as a fraction of the day
  double evening_relative = 0.9; ///< evening rush height / morning rush
  double noise_cv = 0.0;         ///< multiplicative lognormal noise (0 = off)
  double noise_interval_s = 30.0;///< how often the noise factor resamples
  double phase = 0.0;            ///< phase shift in fractions of a day

  void validate() const;
};

class DiurnalTrace {
 public:
  explicit DiurnalTrace(DiurnalTraceConfig cfg, std::uint64_t noise_seed = 1);

  /// Deterministic (noise-free) rate at absolute time `t` (wraps per day).
  [[nodiscard]] double base_rate(double t) const;

  /// Rate including the piecewise-constant noise factor.
  [[nodiscard]] double rate(double t) const;

  /// A guaranteed upper bound on rate() over all t (for Poisson thinning).
  [[nodiscard]] double max_rate() const;

  [[nodiscard]] const DiurnalTraceConfig& config() const noexcept {
    return cfg_;
  }

  /// Sample the base (noise-free) rate at `n` uniform points over one day.
  [[nodiscard]] std::vector<double> sample_day(std::size_t n) const;

 private:
  [[nodiscard]] double noise_factor(double t) const;

  DiurnalTraceConfig cfg_;
  std::uint64_t noise_seed_;
  double noise_cap_;
};

}  // namespace amoeba::workload
