#include "workload/load_generator.hpp"

namespace amoeba::workload {

PoissonLoadGenerator::PoissonLoadGenerator(sim::Engine& engine, sim::Rng rng,
                                           RateFn rate, double max_rate,
                                           ArrivalFn on_arrival)
    : engine_(engine),
      rng_(rng),
      rate_(std::move(rate)),
      max_rate_(max_rate),
      on_arrival_(std::move(on_arrival)) {
  AMOEBA_EXPECTS(max_rate > 0.0);
  AMOEBA_EXPECTS(rate_ != nullptr);
  AMOEBA_EXPECTS(on_arrival_ != nullptr);
}

PoissonLoadGenerator::~PoissonLoadGenerator() { stop(); }

void PoissonLoadGenerator::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void PoissonLoadGenerator::stop() {
  running_ = false;
  if (pending_ != sim::kNoEvent) {
    engine_.cancel(pending_);
    pending_ = sim::kNoEvent;
  }
}

void PoissonLoadGenerator::schedule_next() {
  // Lewis-Shedler thinning: candidate arrivals at rate max_rate_, each
  // accepted with probability rate(t)/max_rate_.
  const double gap = rng_.exponential(max_rate_);
  pending_ = engine_.schedule_in(gap, [this] {
    pending_ = sim::kNoEvent;
    if (!running_) return;
    const double lambda = rate_(engine_.now());
    AMOEBA_ASSERT_MSG(lambda <= max_rate_ * (1.0 + 1e-9),
                      "rate function exceeded its declared bound");
    if (lambda > 0.0 && rng_.uniform() < lambda / max_rate_) {
      ++emitted_;
      on_arrival_();
    }
    if (running_) schedule_next();
  });
}

ConstantLoadGenerator::ConstantLoadGenerator(sim::Engine& engine, sim::Rng rng,
                                             double rate_qps,
                                             ArrivalFn on_arrival)
    : engine_(engine), rng_(rng), rate_(rate_qps),
      on_arrival_(std::move(on_arrival)) {
  AMOEBA_EXPECTS(rate_qps > 0.0);
  AMOEBA_EXPECTS(on_arrival_ != nullptr);
}

void ConstantLoadGenerator::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void ConstantLoadGenerator::stop() {
  running_ = false;
  if (pending_ != sim::kNoEvent) {
    engine_.cancel(pending_);
    pending_ = sim::kNoEvent;
  }
}

void ConstantLoadGenerator::set_rate(double rate_qps) {
  AMOEBA_EXPECTS(rate_qps > 0.0);
  rate_ = rate_qps;
}

void ConstantLoadGenerator::schedule_next() {
  const double gap = rng_.exponential(rate_);
  pending_ = engine_.schedule_in(gap, [this] {
    pending_ = sim::kNoEvent;
    if (!running_) return;
    ++emitted_;
    on_arrival_();
    if (running_) schedule_next();
  });
}

}  // namespace amoeba::workload
