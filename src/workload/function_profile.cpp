#include "workload/function_profile.hpp"

namespace amoeba::workload {

void FunctionProfile::validate() const {
  AMOEBA_EXPECTS_MSG(!name.empty(), "profile must be named");
  AMOEBA_EXPECTS(exec.valid());
  AMOEBA_EXPECTS(code_bytes >= 0.0);
  AMOEBA_EXPECTS(result_bytes >= 0.0);
  AMOEBA_EXPECTS(platform_overhead_s >= 0.0);
  AMOEBA_EXPECTS(rpc_overhead_s >= 0.0);
  AMOEBA_EXPECTS(memory_mb > 0.0);
  AMOEBA_EXPECTS(cpu_cv >= 0.0);
  AMOEBA_EXPECTS(qos_target_s > 0.0);
  AMOEBA_EXPECTS(peak_load_qps > 0.0);
}

double FunctionProfile::ideal_serverless_latency(double disk_bps,
                                                 double net_bps) const {
  AMOEBA_EXPECTS(disk_bps > 0.0 && net_bps > 0.0);
  return platform_overhead_s + code_bytes / disk_bps + exec.cpu_seconds +
         exec.io_bytes / disk_bps + exec.net_bytes / net_bps +
         result_bytes / net_bps;
}

double FunctionProfile::ideal_iaas_latency(double disk_bps,
                                           double net_bps) const {
  AMOEBA_EXPECTS(disk_bps > 0.0 && net_bps > 0.0);
  return rpc_overhead_s + exec.cpu_seconds + exec.io_bytes / disk_bps +
         exec.net_bytes / net_bps;
}

const char* to_string(Sensitivity s) noexcept {
  switch (s) {
    case Sensitivity::kNone: return "-";
    case Sensitivity::kLow: return "low";
    case Sensitivity::kMedium: return "medium";
    case Sensitivity::kHigh: return "high";
  }
  return "?";
}

namespace {
Sensitivity bucket(double fraction) noexcept {
  if (fraction >= 0.45) return Sensitivity::kHigh;
  if (fraction >= 0.20) return Sensitivity::kMedium;
  if (fraction >= 0.05) return Sensitivity::kLow;
  return Sensitivity::kNone;
}
}  // namespace

SensitivityVector classify_sensitivity(const FunctionProfile& p,
                                       double disk_bps, double net_bps) {
  const double cpu = p.exec.cpu_seconds;
  const double io = (p.exec.io_bytes + p.code_bytes) / disk_bps;
  const double net = (p.exec.net_bytes + p.result_bytes) / net_bps;
  const double total = cpu + io + net;
  SensitivityVector v;
  if (total <= 0.0) return v;
  v.cpu = bucket(cpu / total);
  // Memory sensitivity tracks CPU for these in-memory workloads (the paper's
  // Table III couples CPU and memory sensitivity for every benchmark).
  v.memory = v.cpu;
  v.disk_io = bucket(io / total);
  v.network = bucket(net / total);
  return v;
}

}  // namespace amoeba::workload
