// Open-loop query generators.
//
// `PoissonLoadGenerator` emits arrivals as a non-homogeneous Poisson
// process whose rate follows an arbitrary rate function (typically a
// DiurnalTrace), using Lewis & Shedler thinning against the rate upper
// bound. `ConstantLoadGenerator` is the fixed-rate special case used by
// profiling sweeps.
#pragma once

#include <functional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace amoeba::workload {

/// Callback invoked once per generated query at its arrival time.
using ArrivalFn = std::function<void()>;

/// Rate function lambda(t) in queries/second.
using RateFn = std::function<double(double)>;

class PoissonLoadGenerator {
 public:
  /// `max_rate` must bound `rate(t)` for all t (thinning envelope).
  PoissonLoadGenerator(sim::Engine& engine, sim::Rng rng, RateFn rate,
                       double max_rate, ArrivalFn on_arrival);
  ~PoissonLoadGenerator();
  PoissonLoadGenerator(const PoissonLoadGenerator&) = delete;
  PoissonLoadGenerator& operator=(const PoissonLoadGenerator&) = delete;

  /// Begin emitting arrivals from the current simulation time.
  void start();

  /// Stop emitting (cancels the pending candidate arrival).
  void stop();

  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void schedule_next();

  sim::Engine& engine_;
  sim::Rng rng_;
  RateFn rate_;
  double max_rate_;
  ArrivalFn on_arrival_;
  sim::EventId pending_ = sim::kNoEvent;
  bool running_ = false;
  std::uint64_t emitted_ = 0;
};

/// Fixed-rate Poisson generator (profiling sweeps, meters).
class ConstantLoadGenerator {
 public:
  ConstantLoadGenerator(sim::Engine& engine, sim::Rng rng, double rate_qps,
                        ArrivalFn on_arrival);

  void start();
  void stop();
  /// Change the emission rate (takes effect from the next arrival).
  void set_rate(double rate_qps);

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  void schedule_next();

  sim::Engine& engine_;
  sim::Rng rng_;
  double rate_;
  ArrivalFn on_arrival_;
  sim::EventId pending_ = sim::kNoEvent;
  bool running_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace amoeba::workload
