// Contention-meter function definitions (paper §IV-B).
//
// A contention meter is a "delicate function" whose latency, when run at a
// known low rate on the serverless platform, reveals how much pressure the
// resident microservices put on one shared resource. Three meters cover
// the paper's three dimensions: CPU/memory, disk-IO bandwidth, and network
// bandwidth.
//
// The per-query CPU demands are sized so that at the monitor's standard
// 1 QPS probing rate the meters cost 1.1% / 0.5% / 0.6% of the 40-core
// node — the exact overheads the paper reports in §VII-E.
#pragma once

#include <array>
#include <string>

#include "workload/function_profile.hpp"

namespace amoeba::workload {

enum class MeterKind { kCpuMemory = 0, kDiskIo = 1, kNetwork = 2 };

inline constexpr std::array<MeterKind, 3> kAllMeters = {
    MeterKind::kCpuMemory, MeterKind::kDiskIo, MeterKind::kNetwork};

[[nodiscard]] const char* to_string(MeterKind kind) noexcept;

/// The function profile a meter deploys on the serverless platform.
[[nodiscard]] FunctionProfile meter_profile(MeterKind kind);

/// Probing rate used by the contention monitor (paper §VII-E: "each
/// contention meter runs for 1 query per second").
inline constexpr double kMeterProbeQps = 1.0;

}  // namespace amoeba::workload
